#include "quantum/algorithms.hpp"

#include <cmath>
#include <numbers>

#include "quantum/fusion.hpp"
#include "quantum/gates.hpp"
#include "util/expect.hpp"

namespace qdc::quantum {

namespace {

/// Controlled phase gate diag(1, e^{i theta}) on the target.
Gate1 phase_gate(double theta) {
  return Gate1{{1, 0}, {0, 0}, {0, 0}, {std::cos(theta), std::sin(theta)}};
}

/// QFT gate sequence, emitted to any sink with apply/apply_controlled/swap
/// verbs. Both the direct and the fused path go through this one emitter,
/// so the sequences cannot drift apart — which is what the fused path's
/// bit-identity contract rides on.
template <typename Sink>
void emit_qft(int n, Sink&& sink) {
  for (int i = n - 1; i >= 0; --i) {
    sink.one(hadamard(), i);
    for (int k = i - 1; k >= 0; --k) {
      sink.two(phase_gate(std::numbers::pi / double(1 << (i - k))), k, i);
    }
  }
  for (int j = 0; j < n / 2; ++j) {
    sink.exchange(j, n - 1 - j);
  }
}

/// Inverse-QFT gate sequence; same single emitter as emit_qft.
template <typename Sink>
void emit_inverse_qft(int n, Sink&& sink) {
  for (int j = 0; j < n / 2; ++j) {
    sink.exchange(j, n - 1 - j);
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k <= i - 1; ++k) {
      sink.two(phase_gate(-std::numbers::pi / double(1 << (i - k))), k, i);
    }
    sink.one(hadamard(), i);
  }
}

/// Sink applying gates directly to a StateVector (the classic path).
struct DirectSink {
  StateVector& state;
  void one(const Gate1& g, int q) { state.apply(g, q); }
  void two(const Gate1& g, int c, int t) { state.apply_controlled(g, c, t); }
  void exchange(int a, int b) { state.swap(a, b); }
};

/// Sink recording gates into a FusedCircuit (the fused path).
struct CircuitSink {
  FusedCircuit& circuit;
  void one(const Gate1& g, int q) { circuit.gate(g, q); }
  void two(const Gate1& g, int c, int t) { circuit.controlled(g, c, t); }
  void exchange(int a, int b) { circuit.swap(a, b); }
};

}  // namespace

bool deutsch_jozsa_is_constant(int num_qubits,
                               const std::function<bool(std::size_t)>& f,
                               int fusion_window) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= kMaxQubits,
             "deutsch_jozsa: qubit count out of range");
  StateVector state(num_qubits);
  state.set_fusion_window(fusion_window);  // validates the window argument
  if (fusion_window > 0) {
    FusedCircuit circuit(num_qubits, fusion_window);
    for (int q = 0; q < num_qubits; ++q) circuit.gate(hadamard(), q);
    circuit.oracle(f);
    for (int q = 0; q < num_qubits; ++q) circuit.gate(hadamard(), q);
    circuit.seal();
    circuit.run(state);
  } else {
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
    state.oracle_phase(f);  // phase kickback form of the oracle
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  }
  // Constant f leaves all amplitude on |0...0>; balanced f leaves none.
  return state.probability_of(0) > 0.5;
}

std::size_t bernstein_vazirani(int num_qubits,
                               const std::function<bool(std::size_t)>& f,
                               int fusion_window) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= kMaxQubits,
             "bernstein_vazirani: qubit count out of range");
  StateVector state(num_qubits);
  state.set_fusion_window(fusion_window);
  if (fusion_window > 0) {
    FusedCircuit circuit(num_qubits, fusion_window);
    for (int q = 0; q < num_qubits; ++q) circuit.gate(hadamard(), q);
    circuit.oracle(f);
    for (int q = 0; q < num_qubits; ++q) circuit.gate(hadamard(), q);
    circuit.seal();
    circuit.run(state);
  } else {
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
    state.oracle_phase(f);
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  }
  // The state is exactly |s>; report the most likely basis state.
  std::size_t best = 0;
  double best_p = -1.0;
  for (std::size_t i = 0; i < state.dimension(); ++i) {
    const double p = state.probability_of(i);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  QDC_CHECK(best_p > 0.99,
            "bernstein_vazirani: oracle is not of the form <s, x>");
  return best;
}

void qft(StateVector& state) {
  const int n = state.qubit_count();
  if (state.fusion_window() > 0) {
    FusedCircuit circuit(n, state.fusion_window());
    emit_qft(n, CircuitSink{circuit});
    circuit.seal();
    circuit.run(state);
    return;
  }
  emit_qft(n, DirectSink{state});
}

void inverse_qft(StateVector& state) {
  const int n = state.qubit_count();
  if (state.fusion_window() > 0) {
    FusedCircuit circuit(n, state.fusion_window());
    emit_inverse_qft(n, CircuitSink{circuit});
    circuit.seal();
    circuit.run(state);
    return;
  }
  emit_inverse_qft(n, DirectSink{state});
}

}  // namespace qdc::quantum
