#include "quantum/algorithms.hpp"

#include <cmath>
#include <numbers>

#include "quantum/gates.hpp"
#include "util/expect.hpp"

namespace qdc::quantum {

namespace {

/// Controlled phase gate diag(1, e^{i theta}) on the target.
Gate1 phase_gate(double theta) {
  return Gate1{{1, 0}, {0, 0}, {0, 0}, {std::cos(theta), std::sin(theta)}};
}

}  // namespace

bool deutsch_jozsa_is_constant(int num_qubits,
                               const std::function<bool(std::size_t)>& f) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= kMaxQubits,
             "deutsch_jozsa: qubit count out of range");
  StateVector state(num_qubits);
  for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  state.oracle_phase(f);  // phase kickback form of the oracle
  for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  // Constant f leaves all amplitude on |0...0>; balanced f leaves none.
  return state.probability_of(0) > 0.5;
}

std::size_t bernstein_vazirani(int num_qubits,
                               const std::function<bool(std::size_t)>& f) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= kMaxQubits,
             "bernstein_vazirani: qubit count out of range");
  StateVector state(num_qubits);
  for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  state.oracle_phase(f);
  for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  // The state is exactly |s>; report the most likely basis state.
  std::size_t best = 0;
  double best_p = -1.0;
  for (std::size_t i = 0; i < state.dimension(); ++i) {
    const double p = state.probability_of(i);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  QDC_CHECK(best_p > 0.99,
            "bernstein_vazirani: oracle is not of the form <s, x>");
  return best;
}

void qft(StateVector& state) {
  const int n = state.qubit_count();
  for (int i = n - 1; i >= 0; --i) {
    state.apply(hadamard(), i);
    for (int k = i - 1; k >= 0; --k) {
      state.apply_controlled(
          phase_gate(std::numbers::pi / double(1 << (i - k))), k, i);
    }
  }
  for (int j = 0; j < n / 2; ++j) {
    state.swap(j, n - 1 - j);
  }
}

void inverse_qft(StateVector& state) {
  const int n = state.qubit_count();
  for (int j = 0; j < n / 2; ++j) {
    state.swap(j, n - 1 - j);
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k <= i - 1; ++k) {
      state.apply_controlled(
          phase_gate(-std::numbers::pi / double(1 << (i - k))), k, i);
    }
    state.apply(hadamard(), i);
  }
}

}  // namespace qdc::quantum
