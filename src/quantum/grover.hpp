// Grover search, simulated exactly.
//
// This powers the quantum Disjointness protocol of the paper's Example 1.1:
// the quantum players Grover-search for an index i with x_i = y_i = 1. The
// [AA05] protocol the paper cites runs each oracle query through the
// network (costing Theta(D) rounds); src/core/disjointness.hpp does that
// accounting while this file provides the actual quantum search.
#pragma once

#include <functional>

#include "util/rng.hpp"

namespace qdc::util {
class ThreadPool;
}  // namespace qdc::util

namespace qdc::quantum {

struct GroverResult {
  std::size_t found = 0;           ///< measured index
  bool is_marked = false;          ///< whether `found` satisfies the oracle
  int iterations = 0;              ///< Grover iterations performed
  int oracle_queries = 0;          ///< == iterations
  double success_probability = 0;  ///< mass on marked items pre-measurement
};

/// Searches {0,1}^num_qubits for a marked item. `iterations` < 0 selects
/// the optimal count floor(pi/4 * sqrt(N/M)) (or the M=1 count when no
/// item is marked, mirroring a player who does not know M). num_qubits is
/// capped at kMaxQubits — the same limit as the StateVector the search
/// runs on. `pool` (non-owning; null = serial) shards the statevector
/// kernels and the oracle/probability scans; results are bit-identical
/// for every pool (see state.hpp). `fusion_window` = 0 (default) runs the
/// classic per-gate kernels; w in [2, kMaxFusionWindow] fuses the
/// Hadamard layers of the init step and the diffusion operator
/// (quantum/fusion.hpp) — bit-identical results, fewer full-state passes.
GroverResult grover_search(int num_qubits,
                           const std::function<bool(std::size_t)>& marked,
                           Rng& rng, int iterations = -1,
                           util::ThreadPool* pool = nullptr,
                           int fusion_window = 0);

/// Optimal iteration count for N items of which M are marked (M >= 1).
int grover_optimal_iterations(std::size_t n_items, std::size_t n_marked);

}  // namespace qdc::quantum
