// Test-only access to StateVector internals, mirroring congest/testing.hpp:
// the measurement kernels take their uniform draw from an Rng, so their
// rounding edge cases (a threshold landing beyond the accumulated measure
// mass, a zero-probability branch) cannot be forced through the public
// API. This header injects the draw directly. It is a test surface only —
// src/ code must not include it (enforced by qdc_analyze's
// layering/testing-header firewall).
#pragma once

#include <cstddef>

#include "quantum/state.hpp"

namespace qdc::quantum {

struct StateVectorTestAccess {
  /// measure_all() with the uniform draw replaced by `r`, through the
  /// guarded path measure_all() itself uses: r outside [0, 1) is a
  /// ContractError (which is what the guard probes pin).
  static std::size_t collapse_all_with(StateVector& state, double r) {
    return state.collapse_all(r);
  }

  /// measure() with the uniform draw replaced by `r`, through the guarded
  /// path: forces a branch (outcome = r < P(qubit = 1)) for any r the
  /// uniform_real contract allows; r outside [0, 1) is a ContractError.
  static bool collapse_qubit_with(StateVector& state, int qubit, double r) {
    return state.collapse_qubit(qubit, r);
  }

  /// collapse_all with the r guard bypassed: the only way to
  /// deterministically pin the rounding-residue fallback (r still positive
  /// after the full scan collapses onto the highest-index basis state with
  /// nonzero probability), since no in-contract draw reaches it on a
  /// normalized state.
  static std::size_t collapse_all_residue(StateVector& state, double r) {
    return state.collapse_all_unchecked(r);
  }

  /// collapse_qubit with the r guard bypassed: forces the
  /// zero-probability branch (and its ModelError message) that no
  /// in-contract draw can reach on a normalized state.
  static bool collapse_qubit_residue(StateVector& state, int qubit,
                                     double r) {
    return state.collapse_qubit_unchecked(qubit, r);
  }
};

}  // namespace qdc::quantum
