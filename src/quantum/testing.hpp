// Test-only access to StateVector internals, mirroring congest/testing.hpp:
// the measurement kernels take their uniform draw from an Rng, so their
// rounding edge cases (a threshold landing beyond the accumulated measure
// mass, a zero-probability branch) cannot be forced through the public
// API. This header injects the draw directly. It is a test surface only —
// src/ code must not include it (enforced by qdc_analyze's
// layering/testing-header firewall).
#pragma once

#include <cstddef>

#include "quantum/state.hpp"

namespace qdc::quantum {

struct StateVectorTestAccess {
  /// measure_all() with the uniform draw replaced by `r`: the only way to
  /// deterministically pin the rounding-residue fallback (r still positive
  /// after the full scan collapses onto the highest-index basis state with
  /// nonzero probability).
  static std::size_t collapse_all_with(StateVector& state, double r) {
    return state.collapse_all(r);
  }

  /// measure() with the uniform draw replaced by `r`: forces a branch
  /// (outcome = r < P(qubit = 1)), which is how the zero-probability-branch
  /// ModelError and its message are exercised.
  static bool collapse_qubit_with(StateVector& state, int qubit, double r) {
    return state.collapse_qubit(qubit, r);
  }
};

}  // namespace qdc::quantum
