#include "quantum/grover.hpp"

#include <cmath>
#include <numbers>

#include "quantum/gates.hpp"
#include "quantum/state.hpp"
#include "util/expect.hpp"

namespace qdc::quantum {

int grover_optimal_iterations(std::size_t n_items, std::size_t n_marked) {
  QDC_EXPECT(n_marked >= 1 && n_marked <= n_items,
             "grover_optimal_iterations: bad marked count");
  const double theta =
      std::asin(std::sqrt(static_cast<double>(n_marked) /
                          static_cast<double>(n_items)));
  // (2k+1) * theta ~= pi/2  =>  k ~= pi/(4 theta) - 1/2.
  const int k = static_cast<int>(std::floor(
      std::numbers::pi / (4.0 * theta)));
  return std::max(0, k);
}

GroverResult grover_search(int num_qubits,
                           const std::function<bool(std::size_t)>& marked,
                           Rng& rng, int iterations) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= 20,
             "grover_search: qubit count out of range");
  const std::size_t n = std::size_t{1} << num_qubits;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (marked(i)) ++m;
  }
  if (iterations < 0) {
    iterations = grover_optimal_iterations(n, std::max<std::size_t>(1, m));
  }

  StateVector state(num_qubits);
  for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  for (int it = 0; it < iterations; ++it) {
    // Oracle: phase-flip marked items.
    state.oracle_phase(marked);
    // Diffusion: reflect about the uniform superposition.
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
    state.oracle_phase([](std::size_t i) { return i != 0; });
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
  }

  GroverResult result;
  result.iterations = iterations;
  result.oracle_queries = iterations;
  for (std::size_t i = 0; i < n; ++i) {
    if (marked(i)) result.success_probability += state.probability_of(i);
  }
  result.found = state.measure_all(rng);
  result.is_marked = marked(result.found);
  return result;
}

}  // namespace qdc::quantum
