#include "quantum/grover.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "quantum/fusion.hpp"
#include "quantum/gates.hpp"
#include "quantum/state.hpp"
#include "util/expect.hpp"
#include "util/shard.hpp"

namespace qdc::quantum {

int grover_optimal_iterations(std::size_t n_items, std::size_t n_marked) {
  QDC_EXPECT(n_marked >= 1 && n_marked <= n_items,
             "grover_optimal_iterations: bad marked count");
  const double theta =
      std::asin(std::sqrt(static_cast<double>(n_marked) /
                          static_cast<double>(n_items)));
  // (2k+1) * theta ~= pi/2  =>  k ~= pi/(4 theta) - 1/2.
  const int k = static_cast<int>(std::floor(
      std::numbers::pi / (4.0 * theta)));
  return std::max(0, k);
}

GroverResult grover_search(int num_qubits,
                           const std::function<bool(std::size_t)>& marked,
                           Rng& rng, int iterations,
                           util::ThreadPool* pool, int fusion_window) {
  QDC_EXPECT(num_qubits >= 1 && num_qubits <= kMaxQubits,
             "grover_search: qubit count out of range");
  const std::size_t n = std::size_t{1} << num_qubits;
  const util::ShardPlan scan_plan = util::ShardPlan::over(n);

  // Count marked items with shard-indexed tallies merged in shard order —
  // integer sums are order-free, but keeping the scan on the same contract
  // as the floating-point reductions costs nothing.
  std::vector<std::uint64_t> marked_partial(
      static_cast<std::size_t>(scan_plan.shards), 0);
  util::run_sharded(pool, scan_plan,
                    [&](int s, std::size_t begin, std::size_t end) {
                      std::uint64_t count = 0;
                      for (std::size_t i = begin; i < end; ++i) {
                        if (marked(i)) ++count;
                      }
                      marked_partial[static_cast<std::size_t>(s)] = count;
                    });
  std::size_t m = 0;
  for (const std::uint64_t c : marked_partial) m += c;
  if (iterations < 0) {
    iterations = grover_optimal_iterations(n, std::max<std::size_t>(1, m));
  }

  StateVector state(num_qubits, pool);
  state.set_fusion_window(fusion_window);  // validates the window argument
  if (fusion_window > 0) {
    // Fused path: one sealed circuit for the init layer and one for the
    // Grover iteration, built once and replayed. The oracles are fusion
    // barriers, so each Hadamard layer fuses into ceil(n / w) windows —
    // the exact kernel keeps this bit-identical to the unfused loop below.
    FusedCircuit init(num_qubits, fusion_window);
    for (int q = 0; q < num_qubits; ++q) init.gate(hadamard(), q);
    init.seal();
    FusedCircuit step(num_qubits, fusion_window);
    step.oracle(marked);
    for (int q = 0; q < num_qubits; ++q) step.gate(hadamard(), q);
    step.oracle([](std::size_t i) { return i != 0; });
    for (int q = 0; q < num_qubits; ++q) step.gate(hadamard(), q);
    step.seal();
    init.run(state);
    for (int it = 0; it < iterations; ++it) step.run(state);
  } else {
    for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
    for (int it = 0; it < iterations; ++it) {
      // Oracle: phase-flip marked items.
      state.oracle_phase(marked);
      // Diffusion: reflect about the uniform superposition.
      for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
      state.oracle_phase([](std::size_t i) { return i != 0; });
      for (int q = 0; q < num_qubits; ++q) state.apply(hadamard(), q);
    }
  }

  GroverResult result;
  result.iterations = iterations;
  result.oracle_queries = iterations;
  // Success probability: per-shard partial sums, merged serially in shard
  // order (bit-identical for every pool; exactly the serial left-to-right
  // sum when n fits in one shard).
  std::vector<double> prob_partial(
      static_cast<std::size_t>(scan_plan.shards), 0.0);
  util::run_sharded(pool, scan_plan,
                    [&](int s, std::size_t begin, std::size_t end) {
                      double sum = 0.0;
                      for (std::size_t i = begin; i < end; ++i) {
                        if (marked(i)) sum += state.probability_of(i);
                      }
                      prob_partial[static_cast<std::size_t>(s)] = sum;
                    });
  for (const double p : prob_partial) result.success_probability += p;
  result.found = state.measure_all(rng);
  result.is_marked = marked(result.found);
  return result;
}

}  // namespace qdc::quantum
