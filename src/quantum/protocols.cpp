#include "quantum/protocols.hpp"

#include <numbers>

#include "quantum/fusion.hpp"
#include "quantum/gates.hpp"
#include "util/expect.hpp"

namespace qdc::quantum {

void make_epr(StateVector& state, int a, int b) {
  if (state.fusion_window() > 0) {
    FusedCircuit circuit(state.qubit_count(), state.fusion_window());
    circuit.gate(hadamard(), a);
    circuit.cnot(a, b);
    circuit.seal();
    circuit.run(state);
    return;
  }
  state.apply(hadamard(), a);
  state.cnot(a, b);
}

TeleportBits teleport(StateVector& state, int source, int epr_a, int epr_b,
                      Rng& rng) {
  QDC_EXPECT(source != epr_a && source != epr_b && epr_a != epr_b,
             "teleport: qubits must be distinct");
  // Bell measurement of (source, epr_a).
  if (state.fusion_window() > 0) {
    FusedCircuit circuit(state.qubit_count(), state.fusion_window());
    circuit.cnot(source, epr_a);
    circuit.gate(hadamard(), source);
    circuit.seal();
    circuit.run(state);
  } else {
    state.cnot(source, epr_a);
    state.apply(hadamard(), source);
  }
  TeleportBits bits;
  bits.z = state.measure(source, rng);
  bits.x = state.measure(epr_a, rng);
  // Receiver's corrections.
  if (bits.x) state.apply(pauli_x(), epr_b);
  if (bits.z) state.apply(pauli_z(), epr_b);
  return bits;
}

std::pair<bool, bool> superdense_roundtrip(bool b0, bool b1, Rng& rng,
                                           util::ThreadPool* pool,
                                           int fusion_window) {
  StateVector state(2, pool);
  state.set_fusion_window(fusion_window);  // validates the window argument
  if (fusion_window > 0) {
    // The whole encode/decode sequence touches 2 qubits, so it fuses into
    // a single window — one pass instead of up to six.
    FusedCircuit circuit(2, fusion_window);
    circuit.gate(hadamard(), 0);
    circuit.cnot(0, 1);  // EPR pair: qubit 0 sender, qubit 1 receiver
    if (b0) circuit.gate(pauli_z(), 0);
    if (b1) circuit.gate(pauli_x(), 0);
    circuit.cnot(0, 1);
    circuit.gate(hadamard(), 0);
    circuit.seal();
    circuit.run(state);
  } else {
    make_epr(state, 0, 1);  // qubit 0: sender, qubit 1: receiver
    // Encode: Z for b0, X for b1 on the sender's half.
    if (b0) state.apply(pauli_z(), 0);
    if (b1) state.apply(pauli_x(), 0);
    // The sender's qubit travels to the receiver, who decodes.
    state.cnot(0, 1);
    state.apply(hadamard(), 0);
  }
  const bool d0 = state.measure(0, rng);
  const bool d1 = state.measure(1, rng);
  return {d0, d1};
}

bool chsh_play_quantum(bool x, bool y, Rng& rng) {
  StateVector state(2);
  make_epr(state, 0, 1);
  // Optimal real measurement bases: rotating by theta and measuring Z
  // yields P(a == b) = cos^2((theta_a - theta_b) / 2) on the EPR pair.
  const double alpha = x ? std::numbers::pi / 2.0 : 0.0;
  const double beta = y ? -std::numbers::pi / 4.0 : std::numbers::pi / 4.0;
  state.apply(ry(alpha), 0);
  state.apply(ry(beta), 1);
  const bool a = state.measure(0, rng);
  const bool b = state.measure(1, rng);
  return (a != b) == (x && y);
}

bool chsh_play_classical(bool x, bool y) {
  // Best deterministic strategy: both always answer 0; wins 3 of 4 inputs.
  return !(x && y);
}

}  // namespace qdc::quantum
