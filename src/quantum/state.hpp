// Dense statevector simulator.
//
// This is the quantum substrate of the reproduction: the paper's model
// (Appendix A.1) gives nodes quantum workspaces, quantum channels and
// arbitrary prior entanglement. Full networks cannot be simulated
// classically at scale, but every place where quantumness actually changes
// an outcome in this paper is small: EPR pairs and teleportation
// (Section 6's reduction from qubits to classical bits), nonlocal-game
// strategies (CHSH), and Grover search inside the distributed Disjointness
// protocol of Example 1.1. Those all fit comfortably in a <= 24-qubit
// statevector.
//
// Conventions: qubit 0 is the least significant bit of the basis index;
// basis state |b_{n-1} ... b_1 b_0>.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace qdc::quantum {

using Amplitude = std::complex<double>;

/// A 2x2 unitary gate in row-major order: {u00, u01, u10, u11}.
struct Gate1 {
  Amplitude u00, u01, u10, u11;
};

class StateVector {
 public:
  /// |0...0> on `qubit_count` qubits. Limited to 24 qubits.
  explicit StateVector(int qubit_count);

  int qubit_count() const { return qubit_count_; }
  std::size_t dimension() const { return amplitudes_.size(); }

  const std::vector<Amplitude>& amplitudes() const { return amplitudes_; }
  Amplitude amplitude(std::size_t basis) const;

  /// Applies a single-qubit gate.
  void apply(const Gate1& g, int qubit);

  /// Applies a single-qubit gate controlled on `control` being 1.
  void apply_controlled(const Gate1& g, int control, int target);

  /// CNOT / CZ / SWAP conveniences.
  void cnot(int control, int target);
  void cz(int control, int target);
  void swap(int a, int b);

  /// Phase-flips every basis state whose index satisfies the predicate
  /// (a classical oracle: |x> -> (-1)^{f(x)} |x>). The predicate sees the
  /// full basis index.
  template <typename Pred>
  void oracle_phase(Pred&& marked) {
    for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
      if (marked(i)) amplitudes_[i] = -amplitudes_[i];
    }
  }

  /// Probability of measuring `qubit` as 1.
  double probability_one(int qubit) const;

  /// Measures one qubit in the computational basis, collapsing the state.
  bool measure(int qubit, Rng& rng);

  /// Measures all qubits; returns the observed basis index.
  std::size_t measure_all(Rng& rng);

  /// Probability of observing `basis` when measuring everything.
  double probability_of(std::size_t basis) const;

  /// Squared norm (should always be ~1; exposed for testing).
  double norm_squared() const;

  /// Inner product <this|other|... fidelity |<a|b>|^2 with another state of
  /// the same dimension.
  double fidelity(const StateVector& other) const;

 private:
  int qubit_count_;
  std::vector<Amplitude> amplitudes_;
};

}  // namespace qdc::quantum
