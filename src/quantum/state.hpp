// Dense statevector simulator.
//
// This is the quantum substrate of the reproduction: the paper's model
// (Appendix A.1) gives nodes quantum workspaces, quantum channels and
// arbitrary prior entanglement. Full networks cannot be simulated
// classically at scale, but every place where quantumness actually changes
// an outcome in this paper is small: EPR pairs and teleportation
// (Section 6's reduction from qubits to classical bits), nonlocal-game
// strategies (CHSH), and Grover search inside the distributed Disjointness
// protocol of Example 1.1. Those all fit comfortably in a statevector of
// at most kMaxQubits (= 24) qubits — the one limit every allocator of a
// StateVector (grover_search, Deutsch-Jozsa, ...) shares.
//
// Parallelism: every amplitude kernel can shard its index range over an
// injected, non-owning util::ThreadPool (null = serial, the default).
// Shard boundaries depend on the amplitude count only — never on the
// thread count — and every floating-point reduction tallies into
// shard-indexed slots that are merged serially in shard order, so all
// results are bit-identical for a null pool and for pools of 1, 2 or N
// threads (pinned by the QuantumDeterminism suite). See util/shard.hpp
// and docs/ARCHITECTURE.md for the contract.
//
// Conventions: qubit 0 is the least significant bit of the basis index;
// basis state |b_{n-1} ... b_1 b_0>.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace qdc::util {
class ThreadPool;
}  // namespace qdc::util

namespace qdc::quantum {

/// Hard cap on statevector width (2^24 amplitudes, 256 MiB), shared by the
/// StateVector constructor and by every algorithm that allocates one
/// (grover_search, deutsch_jozsa_is_constant, bernstein_vazirani).
inline constexpr int kMaxQubits = 24;

/// Hard cap on a fused-gate window (quantum/fusion.hpp): 2^6 = 64 panel
/// amplitudes, 1 KiB — sized so a gather panel and a dense window matrix
/// both stay L1-resident. Lives here (not fusion.hpp) because
/// StateVector::set_fusion_window validates against it.
inline constexpr int kMaxFusionWindow = 6;

using Amplitude = std::complex<double>;

/// A 2x2 unitary gate in row-major order: {u00, u01, u10, u11}.
struct Gate1 {
  Amplitude u00, u01, u10, u11;
};

class FusedGate;
struct StateVectorTestAccess;

namespace detail {

/// Spreads a packed pair index back into a basis index by inserting a 0 at
/// `bit_pos`: the k-th basis index whose `bit_pos` bit is clear. Gate
/// kernels enumerate pairs directly through this instead of scanning the
/// whole range and skipping half of it, so shard workloads are balanced.
/// Shared by the classic kernels (state.cpp) and the fused ones
/// (fusion.cpp) — both must pair amplitudes identically for the fused
/// path's bitwise-identity contract to hold.
inline std::size_t insert_zero_bit(std::size_t k, int bit_pos) {
  const std::size_t low_mask = (std::size_t{1} << bit_pos) - 1;
  return ((k >> bit_pos) << (bit_pos + 1)) | (k & low_mask);
}

}  // namespace detail

class StateVector {
 public:
  /// |0...0> on `qubit_count` qubits. Limited to kMaxQubits qubits. `pool`
  /// is a non-owning thread pool the amplitude kernels shard over; null
  /// (the default) runs every kernel serially. The caller keeps the pool
  /// alive for the lifetime of the StateVector (or until it is replaced
  /// via set_thread_pool).
  explicit StateVector(int qubit_count, util::ThreadPool* pool = nullptr);

  int qubit_count() const { return qubit_count_; }
  std::size_t dimension() const { return amplitudes_.size(); }

  /// Replaces the injected pool (non-owning; null = serial). Results never
  /// depend on the pool — only kernel wall time does.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  const std::vector<Amplitude>& amplitudes() const { return amplitudes_; }
  Amplitude amplitude(std::size_t basis) const;

  /// Applies a single-qubit gate.
  void apply(const Gate1& g, int qubit);

  /// Applies a single-qubit gate controlled on `control` being 1.
  /// Requires control != target.
  void apply_controlled(const Gate1& g, int control, int target);

  /// CNOT / CZ / SWAP conveniences. swap(a, a) is a no-op (a qubit always
  /// trivially swaps with itself); cnot/cz require distinct qubits.
  void cnot(int control, int target);
  void cz(int control, int target);
  void swap(int a, int b);

  /// Applies a fused window (quantum/fusion.hpp) in one cache-blocked pass:
  /// gather each 2^w-amplitude group into a contiguous panel, replay the
  /// window's recorded gates inside the panel, scatter back. Bit-identical
  /// to applying the recorded gates one by one through apply /
  /// apply_controlled — the exact-kernel contract the fused bench and the
  /// QuantumFusion determinism tests pin. Defined in fusion.cpp.
  void apply_fused(const FusedGate& fused);

  /// Same pass, but multiplies each panel by the window's dense 2^w x 2^w
  /// unitary instead of replaying gates. Changes floating-point
  /// association, so it matches the exact kernel only to ~1e-12 — use when
  /// a window holds more gates than its dimension. Defined in fusion.cpp.
  void apply_fused_dense(const FusedGate& fused);

  /// Opt-in knob consulted by the algorithm layers (qft, grover_search,
  /// make_epr, teleport, ...): 0 (the default) keeps every caller on the
  /// classic per-gate kernels — the oracle path; w in [2, kMaxFusionWindow]
  /// asks them to fuse gate runs into windows of up to w qubits. The knob
  /// changes wall time only, never results (exact-kernel contract above).
  void set_fusion_window(int window);
  int fusion_window() const { return fusion_window_; }

  /// Phase-flips every basis state whose index satisfies the predicate
  /// (a classical oracle: |x> -> (-1)^{f(x)} |x>). The predicate sees the
  /// full basis index and must be safe to call concurrently when a pool
  /// is injected (pure predicates are; all oracles in this repo are pure).
  template <typename Pred>
  void oracle_phase(Pred&& marked) {
    for_shards(amplitudes_.size(),
               [&](int, std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   if (marked(i)) amplitudes_[i] = -amplitudes_[i];
                 }
               });
  }

  /// Probability of measuring `qubit` as 1.
  double probability_one(int qubit) const;

  /// Measures one qubit in the computational basis, collapsing the state.
  bool measure(int qubit, Rng& rng);

  /// Measures all qubits; returns the observed basis index. When
  /// floating-point rounding leaves residual measure mass after the scan
  /// (the drawn threshold lands beyond the accumulated total), the state
  /// collapses onto the highest-index basis state with nonzero
  /// probability — never onto a zero-amplitude one.
  std::size_t measure_all(Rng& rng);

  /// Probability of observing `basis` when measuring everything.
  double probability_of(std::size_t basis) const;

  /// Squared norm (should always be ~1; exposed for testing).
  double norm_squared() const;

  /// Fidelity |<this|other>|^2 with another state of the same dimension.
  double fidelity(const StateVector& other) const;

 private:
  friend struct StateVectorTestAccess;

  /// Executes body(shard, begin, end) over the injected pool (serial when
  /// none): the single dispatch point every kernel goes through. Shard
  /// geometry is util::ShardPlan::over(items) — a function of `items`
  /// alone, which is what makes results thread-count-invariant.
  void for_shards(
      std::size_t items,
      const std::function<void(int, std::size_t, std::size_t)>& body) const;

  /// Shard count for_shards(items, ...) will use; sizes the shard-indexed
  /// partial-reduction slots.
  int shard_count_for(std::size_t items) const;

  /// measure() with the uniform draw injected: collapses `qubit` to the
  /// branch selected by r < P(qubit = 1). Guards r against [0, 1) — a draw
  /// outside the uniform_real contract is caller error, not a model state —
  /// then forwards to the unchecked core. Tests probe the guard through
  /// quantum/testing.hpp.
  bool collapse_qubit(int qubit, double r);

  /// collapse_qubit without the r guard: accepts any draw, including ones
  /// outside [0, 1), which is the only way to force the zero-probability
  /// branch and its ModelError on a normalized state (see
  /// quantum/testing.hpp).
  bool collapse_qubit_unchecked(int qubit, double r);

  /// measure_all() with the uniform draw injected: scans the measure mass
  /// until it exceeds r, with the documented highest-nonzero fallback for
  /// rounding residue. Guards r against [0, 1) like collapse_qubit, then
  /// forwards to the unchecked core.
  std::size_t collapse_all(double r);

  /// collapse_all without the r guard: accepts any draw so tests can pin
  /// the rounding-residue fallback with r past the total measure mass (see
  /// quantum/testing.hpp).
  std::size_t collapse_all_unchecked(double r);

  int qubit_count_;
  std::vector<Amplitude> amplitudes_;
  util::ThreadPool* pool_ = nullptr;  // non-owning; null = serial
  int fusion_window_ = 0;  // 0 = unfused; see set_fusion_window
};

}  // namespace qdc::quantum
