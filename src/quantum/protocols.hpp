// Small quantum protocols the paper's arguments rely on:
//  * EPR pairs (footnote 2: shared entanglement subsumes shared randomness);
//  * teleportation (Section 6 / Appendix B.2: "using teleportation it can be
//    assumed that Carol and David send 2T classical bits instead of T
//    qubits");
//  * superdense coding (the converse direction: 2 classical bits per qubit,
//    the reason the factor in Lemma 3.2 is 4^{-2c});
//  * CHSH measurement strategies (the canonical XOR game of Section 6).
#pragma once

#include "quantum/state.hpp"
#include "util/rng.hpp"

namespace qdc::quantum {

/// Entangles qubits a and b of `state` into an EPR pair
/// (|00> + |11>)/sqrt(2), assuming both are currently |0>. Honors
/// state.fusion_window(): when nonzero, the H + CNOT pair runs as one
/// fused pass (quantum/fusion.hpp), bit-identical to the unfused path.
void make_epr(StateVector& state, int a, int b);

/// Teleports the state of qubit `source` onto qubit `target` using the EPR
/// pair (epr_a, epr_b), where epr_a is on the sender's side and epr_b =
/// target is on the receiver's side. Returns the two classical bits the
/// sender transmits. After the call, `target` carries the original `source`
/// state (source collapses).
struct TeleportBits {
  bool x = false;  ///< from the Bell measurement (X correction)
  bool z = false;  ///< from the Bell measurement (Z correction)
};
/// Honors state.fusion_window() for the Bell-measurement prefix (CNOT +
/// H), like make_epr; the measurement-conditioned corrections stay on the
/// classic kernels (a single gate gains nothing from fusing).
TeleportBits teleport(StateVector& state, int source, int epr_a, int epr_b,
                      Rng& rng);

/// Superdense coding: encodes two classical bits into one qubit of an EPR
/// pair and decodes them on the other side. Returns the decoded bits
/// (always equal to the inputs; exercised as a protocol test). `pool`
/// (non-owning; null = serial) is forwarded to the internal StateVector —
/// outcomes are bit-identical for every pool. `fusion_window` = 0 runs
/// the classic kernels; w in [2, kMaxFusionWindow] fuses the whole
/// encode/decode sequence into one pass, bit-identical either way.
std::pair<bool, bool> superdense_roundtrip(bool b0, bool b1, Rng& rng,
                                           util::ThreadPool* pool = nullptr,
                                           int fusion_window = 0);

/// One CHSH game round played with the optimal entangled strategy
/// (measurement angles 0, pi/2 for Alice and pi/4, -pi/4 for Bob).
/// Returns true if the players win (a xor b == x and y).
bool chsh_play_quantum(bool x, bool y, Rng& rng);

/// One CHSH round with the best classical strategy (always output 0):
/// wins unless x = y = 1.
bool chsh_play_classical(bool x, bool y);

}  // namespace qdc::quantum
