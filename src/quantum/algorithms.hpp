// Textbook quantum query algorithms on the statevector, rounding out the
// quantum substrate: Deutsch-Jozsa, Bernstein-Vazirani and the quantum
// Fourier transform. They exercise the same oracle machinery Grover uses
// (and are the standard sanity suite for any statevector simulator).
#pragma once

#include <functional>

#include "quantum/state.hpp"

namespace qdc::quantum {

/// Deutsch-Jozsa: decides with ONE query whether a promise function
/// f : {0,1}^n -> {0,1} is constant or balanced. Returns true iff
/// constant. The promise (constant or exactly-balanced) is the caller's
/// responsibility. `fusion_window` = 0 (default) runs the classic
/// per-gate kernels; w in [2, kMaxFusionWindow] routes the Hadamard
/// layers through the exact fused kernels (quantum/fusion.hpp) —
/// bit-identical results, fewer full-state passes.
bool deutsch_jozsa_is_constant(int num_qubits,
                               const std::function<bool(std::size_t)>& f,
                               int fusion_window = 0);

/// Bernstein-Vazirani: recovers the hidden string s of f(x) = <s, x> mod 2
/// with one query. Returns s as a basis index. `fusion_window` as in
/// deutsch_jozsa_is_constant.
std::size_t bernstein_vazirani(int num_qubits,
                               const std::function<bool(std::size_t)>& f,
                               int fusion_window = 0);

/// In-place quantum Fourier transform over all qubits of `state`
/// (convention: QFT|x> = sum_y exp(2 pi i x y / 2^n) |y> / sqrt(2^n)).
/// Honors state.fusion_window(): when nonzero, the gate sequence runs
/// through the exact fused kernels, bit-identical to the unfused path.
void qft(StateVector& state);

/// Inverse QFT. Honors state.fusion_window() like qft.
void inverse_qft(StateVector& state);

}  // namespace qdc::quantum
