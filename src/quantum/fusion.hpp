// Gate fusion: coalesce runs of single- and two-qubit gates that touch a
// small window of qubits into one dense unitary, applied in a single
// cache-blocked pass over the statevector.
//
// Why: every StateVector::apply is a memory-bound sweep over all 2^n
// amplitudes, so a circuit of G gates costs G full passes. Fusing gates
// into windows of w qubits costs one pass per *window* instead — on the
// out-of-cache states the paper's Grover / simulation workloads need
// (2^21+ amplitudes), that traffic reduction is the whole speedup.
//
// Two kernels share the cache-blocked pass (gather a 2^w-amplitude group
// into a contiguous panel, transform, scatter back):
//
//  * exact (FusedCircuit::run, StateVector::apply_fused): replays the
//    window's recorded gates inside the panel with the same pair-update
//    expressions as the classic kernels. Gather and scatter are pure
//    copies and every pair update sees exactly the operands the unfused
//    kernel would, so the result is BIT-IDENTICAL to gate-by-gate
//    application — the fused path's documented contract, pinned by the
//    QuantumFusion tests and asserted in-bench by bench_quantum_scaling.
//  * dense (run_dense, apply_fused_dense): multiplies each panel by the
//    window's dense 2^w x 2^w matrix. One matvec regardless of gate
//    count, but the changed floating-point association means it matches
//    the exact kernel only to ~1e-12. Use when windows pack more gates
//    than their dimension.
//
// Both kernels shard groups with ShardPlan::over_aligned, so the
// determinism contract of state.hpp carries over unchanged: groups are
// disjoint, no cross-group reductions exist, and results are
// bit-identical for a null pool and pools of 1, 2 or N threads.
//
// The fused path is opt-in (StateVector::set_fusion_window, or the
// fusion_window parameters on grover_search & friends); the classic
// per-gate kernels remain the oracle the fused path is checked against.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "quantum/state.hpp"

namespace qdc::quantum {

/// Default fusion window when a caller opts in without a preference:
/// 2^5 = 32-amplitude panels. Wide enough to absorb the H / rotation /
/// CNOT-chain runs the repo's circuits are made of (a Hadamard layer over
/// n qubits packs into ceil(n/5) passes), small enough that a panel plus
/// its dense matrix stay comfortably L1-resident; measured fastest of the
/// legal windows on the gates workload of bench_quantum_scaling.
inline constexpr int kDefaultFusionWindow = 5;

/// One recorded gate inside a fused window, with qubits resolved to bit
/// positions local to the window (window qubits sorted ascending; local
/// bit j corresponds to FusedGate::qubits()[j]).
struct WindowOp {
  Gate1 g;
  int local0 = 0;   ///< target's local bit
  int local1 = -1;  ///< control's local bit; -1 for single-qubit gates
};

/// A fused window: an ordered list of gates on a fixed set of at most
/// kMaxFusionWindow qubits, together with the precomputed machinery both
/// kernels need — gather offsets, local-index ops, and the dense window
/// unitary (maintained incrementally as gates are pushed). Built by
/// FusedCircuit::seal(); usable directly in tests.
class FusedGate {
 public:
  /// Window over `qubits` (distinct, each in [0, kMaxQubits)). Qubits are
  /// sorted internally; the window starts as the identity.
  explicit FusedGate(std::vector<int> qubits);

  /// Appends a single-qubit gate on `qubit` (must be a window qubit).
  void push_gate(const Gate1& g, int qubit);

  /// Appends a controlled single-qubit gate (both window qubits,
  /// control != target).
  void push_controlled(const Gate1& g, int control, int target);

  /// Window qubits, sorted ascending.
  const std::vector<int>& qubits() const { return qubits_; }
  int window() const { return static_cast<int>(qubits_.size()); }
  /// Panel size: 2^window().
  std::size_t dim() const { return std::size_t{1} << qubits_.size(); }
  int gate_count() const { return static_cast<int>(ops_.size()); }
  const std::vector<WindowOp>& ops() const { return ops_; }

  /// Dense row-major dim() x dim() unitary equal to the pushed sequence
  /// (in push order), over the local bit convention above.
  const std::vector<Amplitude>& matrix() const { return matrix_; }

  /// Gather table: offsets()[m] = sum over set bits j of m of
  /// 1 << qubits()[j]. Group amplitude m lives at group_base(g) +
  /// offsets()[m] in the full statevector.
  const std::vector<std::size_t>& offsets() const { return offsets_; }

  /// Base index of gather group `group`: the group-th basis index whose
  /// window-qubit bits are all clear.
  std::size_t group_base(std::size_t group) const {
    for (const int q : qubits_) {
      group = detail::insert_zero_bit(group, q);
    }
    return group;
  }

 private:
  int local_index(int qubit) const;

  std::vector<int> qubits_;
  std::vector<WindowOp> ops_;
  std::vector<Amplitude> matrix_;
  std::vector<std::size_t> offsets_;
};

/// Records a gate sequence and packs it into fused windows online, with
/// frontier-only packing: each incoming gate joins the MOST RECENT window
/// when its qubits fit (they are already window qubits, or adding them
/// keeps the window within its size budget), and opens a new window
/// otherwise. Only the frontier may absorb a gate on purpose: hoisting
/// into any earlier window would execute the gate before gates it was
/// recorded after. That reordering is mathematically sound when the
/// skipped gates act on disjoint qubits — but it reassociates the
/// floating-point arithmetic, so the amplitudes drift at the last ulp and
/// the bit-identity contract breaks. Frontier-only packing keeps
/// execution order literally equal to record order, which is what makes
/// run() bit-identical by construction. Oracles are barriers: the window
/// open when oracle() is called never absorbs gates recorded after it.
///
/// Usage: record with gate()/controlled()/cnot()/cz()/swap()/oracle(),
/// then seal() once, then run() (exact, bit-identical to the unfused
/// sequence) or run_dense() any number of times against states of the
/// matching qubit count.
class FusedCircuit {
 public:
  explicit FusedCircuit(int qubit_count, int window = kDefaultFusionWindow);

  void gate(const Gate1& g, int qubit);
  void controlled(const Gate1& g, int control, int target);

  /// Conveniences mirroring StateVector: same matrices, same expansion
  /// (swap = 3 CNOTs; swap(a, a) is a no-op), so fused runs stay
  /// bit-identical to the unfused call sequence.
  void cnot(int control, int target);
  void cz(int control, int target);
  void swap(int a, int b);

  /// Records a phase oracle (StateVector::oracle_phase) at this point in
  /// the sequence. Oracles see full basis indices and act as fusion
  /// barriers.
  void oracle(std::function<bool(std::size_t)> marked);

  /// Freezes the circuit and builds the FusedGate for every window.
  /// Recording past seal() is a contract error; run() before it is too.
  void seal();
  bool sealed() const { return sealed_; }

  /// Replays the sequence on `state` through the exact fused kernel
  /// (single-gate windows pass through to the classic kernels — a fused
  /// pass only pays for itself once a window holds >= 2 gates).
  /// Bit-identical to issuing the recorded calls directly on `state`.
  void run(StateVector& state) const;

  /// Same pass structure through the dense matvec kernel (~1e-12 of
  /// run(); see header comment).
  void run_dense(StateVector& state) const;

  int qubit_count() const { return qubit_count_; }
  int window() const { return window_; }

  /// Packing introspection: number of fused windows, number of recorded
  /// gates across them, and the number of full-state passes a run() costs
  /// (windows + oracles) versus the unfused sequence (gates + oracles).
  int window_count() const { return static_cast<int>(windows_.size()); }
  int recorded_gate_count() const;
  int pass_count() const { return static_cast<int>(ops_.size()); }

 private:
  /// A recorded gate before sealing: q1 = -1 for single-qubit gates,
  /// otherwise q0 = target and q1 = control.
  struct Recorded {
    Gate1 g;
    int q0;
    int q1;
  };
  struct WindowBuild {
    std::vector<int> qubits;
    std::vector<Recorded> gates;
  };
  /// One step of the sealed execution order: a window index, or an oracle
  /// (window < 0).
  struct Step {
    int window = -1;
    std::function<bool(std::size_t)> oracle;
  };

  int open_window(std::vector<int> qubits);
  void expect_recording(const char* fn) const;
  void expect_qubit(int qubit, const char* fn) const;

  int qubit_count_;
  int window_;
  std::vector<WindowBuild> windows_;
  std::vector<Step> ops_;
  int barrier_floor_ = 0;  // windows below this predate the last oracle
  bool sealed_ = false;
  std::vector<FusedGate> fused_;  // by window index, built by seal()
};

}  // namespace qdc::quantum
