#include "quantum/fusion.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "util/expect.hpp"
#include "util/shard.hpp"

namespace qdc::quantum {

using detail::insert_zero_bit;

// ---------------------------------------------------------------------------
// FusedGate

FusedGate::FusedGate(std::vector<int> qubits) : qubits_(std::move(qubits)) {
  QDC_EXPECT(!qubits_.empty() &&
                 qubits_.size() <= static_cast<std::size_t>(kMaxFusionWindow),
             "FusedGate: window size must be in [1, kMaxFusionWindow] "
             "(size = " +
                 std::to_string(qubits_.size()) + ")");
  std::sort(qubits_.begin(), qubits_.end());
  QDC_EXPECT(qubits_.front() >= 0 && qubits_.back() < kMaxQubits,
             "FusedGate: window qubit out of range (lowest = " +
                 std::to_string(qubits_.front()) + ", highest = " +
                 std::to_string(qubits_.back()) + ")");
  QDC_EXPECT(std::adjacent_find(qubits_.begin(), qubits_.end()) ==
                 qubits_.end(),
             "FusedGate: window qubits must be distinct");
  const std::size_t d = dim();
  offsets_.resize(d);
  for (std::size_t m = 0; m < d; ++m) {
    std::size_t offset = 0;
    for (std::size_t j = 0; j < qubits_.size(); ++j) {
      if ((m >> j) & 1U) offset |= std::size_t{1} << qubits_[j];
    }
    offsets_[m] = offset;
  }
  matrix_.assign(d * d, Amplitude{0.0, 0.0});
  for (std::size_t r = 0; r < d; ++r) {
    matrix_[r * d + r] = Amplitude{1.0, 0.0};
  }
}

int FusedGate::local_index(int qubit) const {
  const auto it = std::lower_bound(qubits_.begin(), qubits_.end(), qubit);
  QDC_EXPECT(it != qubits_.end() && *it == qubit,
             "FusedGate: qubit " + std::to_string(qubit) +
                 " is not in this window");
  return static_cast<int>(it - qubits_.begin());
}

void FusedGate::push_gate(const Gate1& g, int qubit) {
  const int p = local_index(qubit);
  ops_.push_back(WindowOp{g, p, -1});
  // Left-multiply the window matrix by the gate's embedding: for every
  // column, update the row pairs split by local bit p.
  const std::size_t d = dim();
  const std::size_t bit = std::size_t{1} << p;
  for (std::size_t j = 0; j < d >> 1; ++j) {
    const std::size_t r0 = insert_zero_bit(j, p);
    const std::size_t r1 = r0 | bit;
    for (std::size_t c = 0; c < d; ++c) {
      const Amplitude a0 = matrix_[r0 * d + c];
      const Amplitude a1 = matrix_[r1 * d + c];
      matrix_[r0 * d + c] = g.u00 * a0 + g.u01 * a1;
      matrix_[r1 * d + c] = g.u10 * a0 + g.u11 * a1;
    }
  }
}

void FusedGate::push_controlled(const Gate1& g, int control, int target) {
  QDC_EXPECT(control != target,
             "FusedGate: control and target must differ (qubit = " +
                 std::to_string(control) + ")");
  const int pc = local_index(control);
  const int pt = local_index(target);
  ops_.push_back(WindowOp{g, pt, pc});
  const std::size_t d = dim();
  const std::size_t cbit = std::size_t{1} << pc;
  const std::size_t tbit = std::size_t{1} << pt;
  const int lo = pc < pt ? pc : pt;
  const int hi = pc < pt ? pt : pc;
  for (std::size_t j = 0; j < d >> 2; ++j) {
    const std::size_t r0 = insert_zero_bit(insert_zero_bit(j, lo), hi) | cbit;
    const std::size_t r1 = r0 | tbit;
    for (std::size_t c = 0; c < d; ++c) {
      const Amplitude a0 = matrix_[r0 * d + c];
      const Amplitude a1 = matrix_[r1 * d + c];
      matrix_[r0 * d + c] = g.u00 * a0 + g.u01 * a1;
      matrix_[r1 * d + c] = g.u10 * a0 + g.u11 * a1;
    }
  }
}

// ---------------------------------------------------------------------------
// FusedCircuit

FusedCircuit::FusedCircuit(int qubit_count, int window)
    : qubit_count_(qubit_count), window_(window) {
  QDC_EXPECT(qubit_count >= 1 && qubit_count <= kMaxQubits,
             "FusedCircuit: qubit count must be in [1, kMaxQubits] "
             "(qubit_count = " +
                 std::to_string(qubit_count) + ")");
  QDC_EXPECT(window >= 2 && window <= kMaxFusionWindow,
             "FusedCircuit: window must be in [2, kMaxFusionWindow] "
             "(window = " +
                 std::to_string(window) + ")");
}

void FusedCircuit::expect_recording(const char* fn) const {
  QDC_EXPECT(!sealed_, std::string("FusedCircuit::") + fn +
                           ": circuit is sealed; record before seal()");
}

void FusedCircuit::expect_qubit(int qubit, const char* fn) const {
  QDC_EXPECT(qubit >= 0 && qubit < qubit_count_,
             std::string("FusedCircuit::") + fn +
                 ": qubit out of range (qubit = " + std::to_string(qubit) +
                 ", qubit_count = " + std::to_string(qubit_count_) + ")");
}

int FusedCircuit::open_window(std::vector<int> qubits) {
  const int index = static_cast<int>(windows_.size());
  windows_.push_back(WindowBuild{std::move(qubits), {}});
  Step step;
  step.window = index;
  ops_.push_back(std::move(step));
  return index;
}

void FusedCircuit::gate(const Gate1& g, int qubit) {
  expect_recording("gate");
  expect_qubit(qubit, "gate");
  // Frontier-only packing: a gate may only join the most recent window.
  // Joining any earlier window would execute the gate before gates it was
  // recorded after — mathematically harmless when the qubit sets are
  // disjoint, but the floating-point association changes, which breaks
  // the bit-identity contract. Appending to the frontier (or opening a
  // new window at the end) keeps execution order equal to record order.
  int w = -1;
  const int frontier = static_cast<int>(windows_.size()) - 1;
  if (frontier >= barrier_floor_) {
    std::vector<int>& qubits =
        windows_[static_cast<std::size_t>(frontier)].qubits;
    const bool has =
        std::find(qubits.begin(), qubits.end(), qubit) != qubits.end();
    if (has || qubits.size() < static_cast<std::size_t>(window_)) {
      if (!has) qubits.push_back(qubit);
      w = frontier;
    }
  }
  if (w < 0) w = open_window({qubit});
  windows_[static_cast<std::size_t>(w)].gates.push_back(
      Recorded{g, qubit, -1});
}

void FusedCircuit::controlled(const Gate1& g, int control, int target) {
  expect_recording("controlled");
  expect_qubit(control, "controlled");
  expect_qubit(target, "controlled");
  QDC_EXPECT(control != target,
             "FusedCircuit::controlled: control and target must differ "
             "(qubit = " +
                 std::to_string(control) + ")");
  // Same frontier-only rule as gate(): join the most recent window when
  // the combined qubit set still fits, else open a new one.
  int w = -1;
  const int frontier = static_cast<int>(windows_.size()) - 1;
  if (frontier >= barrier_floor_) {
    std::vector<int>& qubits =
        windows_[static_cast<std::size_t>(frontier)].qubits;
    const bool has_c = std::find(qubits.begin(), qubits.end(), control) !=
                       qubits.end();
    const bool has_t = std::find(qubits.begin(), qubits.end(), target) !=
                       qubits.end();
    const std::size_t grown =
        qubits.size() + (has_c ? 0U : 1U) + (has_t ? 0U : 1U);
    if (grown <= static_cast<std::size_t>(window_)) {
      if (!has_c) qubits.push_back(control);
      if (!has_t) qubits.push_back(target);
      w = frontier;
    }
  }
  if (w < 0) w = open_window({control, target});
  windows_[static_cast<std::size_t>(w)].gates.push_back(
      Recorded{g, target, control});
}

void FusedCircuit::cnot(int control, int target) {
  // Same matrices as StateVector::cnot/cz so fused replay is bit-identical.
  controlled(Gate1{{0, 0}, {1, 0}, {1, 0}, {0, 0}}, control, target);
}

void FusedCircuit::cz(int control, int target) {
  controlled(Gate1{{1, 0}, {0, 0}, {0, 0}, {-1, 0}}, control, target);
}

void FusedCircuit::swap(int a, int b) {
  expect_recording("swap");
  expect_qubit(a, "swap");
  expect_qubit(b, "swap");
  if (a == b) return;  // mirror StateVector::swap: trivially a no-op
  cnot(a, b);
  cnot(b, a);
  cnot(a, b);
}

void FusedCircuit::oracle(std::function<bool(std::size_t)> marked) {
  expect_recording("oracle");
  QDC_EXPECT(static_cast<bool>(marked),
             "FusedCircuit::oracle: marked predicate must be callable");
  Step step;
  step.oracle = std::move(marked);
  ops_.push_back(std::move(step));
  // Oracles act on full basis indices: no window recorded before this
  // point may absorb a later gate, or the gate would run before the
  // oracle it was recorded after.
  barrier_floor_ = static_cast<int>(windows_.size());
}

void FusedCircuit::seal() {
  expect_recording("seal");
  fused_.reserve(windows_.size());
  for (const WindowBuild& build : windows_) {
    FusedGate gate(build.qubits);
    for (const Recorded& rec : build.gates) {
      if (rec.q1 < 0) {
        gate.push_gate(rec.g, rec.q0);
      } else {
        gate.push_controlled(rec.g, rec.q1, rec.q0);
      }
    }
    fused_.push_back(std::move(gate));
  }
  sealed_ = true;
}

int FusedCircuit::recorded_gate_count() const {
  int count = 0;
  for (const WindowBuild& build : windows_) {
    count += static_cast<int>(build.gates.size());
  }
  return count;
}

void FusedCircuit::run(StateVector& state) const {
  QDC_EXPECT(sealed_, "FusedCircuit::run: seal() the circuit first");
  QDC_EXPECT(state.qubit_count() == qubit_count_,
             "FusedCircuit::run: state qubit count mismatch (circuit = " +
                 std::to_string(qubit_count_) + ", state = " +
                 std::to_string(state.qubit_count()) + ")");
  for (const Step& step : ops_) {
    if (step.window < 0) {
      state.oracle_phase(step.oracle);
      continue;
    }
    const FusedGate& gate = fused_[static_cast<std::size_t>(step.window)];
    if (gate.gate_count() == 1) {
      const WindowOp& op = gate.ops().front();
      if (op.local1 < 0) {
        state.apply(op.g, gate.qubits()[static_cast<std::size_t>(op.local0)]);
      } else {
        state.apply_controlled(
            op.g, gate.qubits()[static_cast<std::size_t>(op.local1)],
            gate.qubits()[static_cast<std::size_t>(op.local0)]);
      }
    } else {
      state.apply_fused(gate);
    }
  }
}

void FusedCircuit::run_dense(StateVector& state) const {
  QDC_EXPECT(sealed_, "FusedCircuit::run_dense: seal() the circuit first");
  QDC_EXPECT(
      state.qubit_count() == qubit_count_,
      "FusedCircuit::run_dense: state qubit count mismatch (circuit = " +
          std::to_string(qubit_count_) + ", state = " +
          std::to_string(state.qubit_count()) + ")");
  for (const Step& step : ops_) {
    if (step.window < 0) {
      state.oracle_phase(step.oracle);
      continue;
    }
    const FusedGate& gate = fused_[static_cast<std::size_t>(step.window)];
    if (gate.gate_count() == 1) {
      const WindowOp& op = gate.ops().front();
      if (op.local1 < 0) {
        state.apply(op.g, gate.qubits()[static_cast<std::size_t>(op.local0)]);
      } else {
        state.apply_controlled(
            op.g, gate.qubits()[static_cast<std::size_t>(op.local1)],
            gate.qubits()[static_cast<std::size_t>(op.local0)]);
      }
    } else {
      state.apply_fused_dense(gate);
    }
  }
}

// ---------------------------------------------------------------------------
// StateVector fused kernels (declared in state.hpp, defined here so
// state.cpp stays free of fusion machinery)

void StateVector::apply_fused(const FusedGate& fused) {
  QDC_EXPECT(fused.qubits().back() < qubit_count_,
             "StateVector::apply_fused: window qubit out of range "
             "(highest = " +
                 std::to_string(fused.qubits().back()) + ", qubit_count = " +
                 std::to_string(qubit_count_) + ")");
  const int w = fused.window();
  const std::size_t block = fused.dim();
  const std::size_t* offsets = fused.offsets().data();
  const std::vector<WindowOp>& ops = fused.ops();
  Amplitude* amps = amplitudes_.data();
  // Groups are disjoint 2^w-amplitude gathers; the aligned plan keeps
  // every group inside one shard, so there is no cross-shard state at all
  // and results are bit-identical for every pool.
  // Longest run of low window qubits equal to 0, 1, 2, ...: group
  // amplitudes come in contiguous chunks of 2^low_run, so gather and
  // scatter move chunks instead of single amplitudes.
  std::size_t low_run = 0;
  while (low_run < fused.qubits().size() &&
         fused.qubits()[low_run] == static_cast<int>(low_run)) {
    ++low_run;
  }
  const std::size_t chunk = std::size_t{1} << low_run;
  util::run_sharded(
      pool_, util::ShardPlan::over_aligned(amplitudes_.size(), block),
      [&](int, std::size_t begin, std::size_t end) {
        alignas(64) Amplitude panel[std::size_t{1} << kMaxFusionWindow];
        for (std::size_t group = begin >> w; group < end >> w; ++group) {
          const std::size_t base = fused.group_base(group);
          if (chunk >= 4) {
            for (std::size_t m = 0; m < block; m += chunk) {
              std::memcpy(panel + m, amps + base + offsets[m],
                          chunk * sizeof(Amplitude));
            }
          } else {
            for (std::size_t m = 0; m < block; ++m) {
              panel[m] = amps[base + offsets[m]];
            }
          }
          // Replay the recorded gates inside the panel, on raw interleaved
          // doubles. The expressions are the written-out forms of the
          // classic kernels' complex arithmetic — (u*a).re is exactly
          // u.re*a.re - u.im*a.im and complex add is component-wise, so
          // the results are bit-identical to gate-by-gate application
          // while skipping libstdc++'s NaN-recovery branches; that is
          // what lets the compiler keep the panel loops branch-free and
          // vector-friendly. Pairs within one gate are disjoint, so
          // sweeping them in contiguous runs changes nothing.
          double* pd = reinterpret_cast<double*>(panel);
          for (const WindowOp& op : ops) {
            const double u00r = op.g.u00.real();
            const double u00i = op.g.u00.imag();
            const double u01r = op.g.u01.real();
            const double u01i = op.g.u01.imag();
            const double u10r = op.g.u10.real();
            const double u10i = op.g.u10.imag();
            const double u11r = op.g.u11.real();
            const double u11i = op.g.u11.imag();
            const auto update_pair = [&](std::size_t i0, std::size_t i1) {
              const double a0r = pd[2 * i0];
              const double a0i = pd[2 * i0 + 1];
              const double a1r = pd[2 * i1];
              const double a1i = pd[2 * i1 + 1];
              pd[2 * i0] = (u00r * a0r - u00i * a0i) +
                           (u01r * a1r - u01i * a1i);
              pd[2 * i0 + 1] = (u00r * a0i + u00i * a0r) +
                               (u01r * a1i + u01i * a1r);
              pd[2 * i1] = (u10r * a0r - u10i * a0i) +
                           (u11r * a1r - u11i * a1i);
              pd[2 * i1 + 1] = (u10r * a0i + u10i * a0r) +
                               (u11r * a1i + u11i * a1r);
            };
            if (op.local1 < 0) {
              const std::size_t bit = std::size_t{1} << op.local0;
              for (std::size_t b = 0; b < block; b += bit << 1) {
                for (std::size_t k = 0; k < bit; ++k) {
                  update_pair(b + k, (b + k) | bit);
                }
              }
            } else {
              const std::size_t cbit = std::size_t{1} << op.local1;
              const std::size_t tbit = std::size_t{1} << op.local0;
              const int lo = op.local1 < op.local0 ? op.local1 : op.local0;
              const int hi = op.local1 < op.local0 ? op.local0 : op.local1;
              const std::size_t lobit = std::size_t{1} << lo;
              const std::size_t hibit = std::size_t{1} << hi;
              for (std::size_t h = 0; h < block; h += hibit << 1) {
                for (std::size_t m = 0; m < hibit; m += lobit << 1) {
                  for (std::size_t l = 0; l < lobit; ++l) {
                    const std::size_t i0 = (h | m | l) | cbit;
                    update_pair(i0, i0 | tbit);
                  }
                }
              }
            }
          }
          if (chunk >= 4) {
            for (std::size_t m = 0; m < block; m += chunk) {
              std::memcpy(amps + base + offsets[m], panel + m,
                          chunk * sizeof(Amplitude));
            }
          } else {
            for (std::size_t m = 0; m < block; ++m) {
              amps[base + offsets[m]] = panel[m];
            }
          }
        }
      });
}

void StateVector::apply_fused_dense(const FusedGate& fused) {
  QDC_EXPECT(fused.qubits().back() < qubit_count_,
             "StateVector::apply_fused_dense: window qubit out of range "
             "(highest = " +
                 std::to_string(fused.qubits().back()) + ", qubit_count = " +
                 std::to_string(qubit_count_) + ")");
  const int w = fused.window();
  const std::size_t block = fused.dim();
  const std::size_t* offsets = fused.offsets().data();
  const Amplitude* matrix = fused.matrix().data();
  Amplitude* amps = amplitudes_.data();
  util::run_sharded(
      pool_, util::ShardPlan::over_aligned(amplitudes_.size(), block),
      [&](int, std::size_t begin, std::size_t end) {
        alignas(64) Amplitude panel[std::size_t{1} << kMaxFusionWindow];
        alignas(64) Amplitude out[std::size_t{1} << kMaxFusionWindow];
        for (std::size_t group = begin >> w; group < end >> w; ++group) {
          const std::size_t base = fused.group_base(group);
          for (std::size_t m = 0; m < block; ++m) {
            panel[m] = amps[base + offsets[m]];
          }
          // One dense matvec per panel: contiguous rows, contiguous
          // panel, no branching — the explicitly vectorizable form.
          for (std::size_t r = 0; r < block; ++r) {
            const Amplitude* row = matrix + r * block;
            Amplitude acc{0.0, 0.0};
            for (std::size_t c = 0; c < block; ++c) {
              acc += row[c] * panel[c];
            }
            out[r] = acc;
          }
          for (std::size_t m = 0; m < block; ++m) {
            amps[base + offsets[m]] = out[m];
          }
        }
      });
}

}  // namespace qdc::quantum
