#include "nonlocal/xor_game.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace qdc::nonlocal {

double XorGame::signed_weight(int x, int y) const {
  return pi[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] *
         (f[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] ? -1.0
                                                                      : 1.0);
}

void XorGame::validate() const {
  QDC_EXPECT(!pi.empty() && !pi[0].empty(), "XorGame: empty input sets");
  QDC_EXPECT(f.size() == pi.size(), "XorGame: f/pi row mismatch");
  double total = 0.0;
  for (std::size_t x = 0; x < pi.size(); ++x) {
    QDC_EXPECT(pi[x].size() == pi[0].size() && f[x].size() == pi[x].size(),
               "XorGame: ragged matrices");
    for (std::size_t y = 0; y < pi[x].size(); ++y) {
      QDC_EXPECT(pi[x][y] >= 0.0, "XorGame: negative probability");
      QDC_EXPECT(f[x][y] == 0 || f[x][y] == 1, "XorGame: f not boolean");
      total += pi[x][y];
    }
  }
  QDC_EXPECT(std::abs(total - 1.0) < 1e-9, "XorGame: pi does not sum to 1");
}

XorGame XorGame::chsh() {
  XorGame g;
  g.pi = {{0.25, 0.25}, {0.25, 0.25}};
  g.f = {{0, 0}, {0, 1}};
  return g;
}

XorGame XorGame::uniform(const std::vector<std::vector<int>>& f) {
  XorGame g;
  g.f = f;
  const double p = 1.0 / (static_cast<double>(f.size()) *
                          static_cast<double>(f.at(0).size()));
  g.pi.assign(f.size(), std::vector<double>(f[0].size(), p));
  return g;
}

double classical_bias_exact(const XorGame& game) {
  game.validate();
  const int nx = game.x_size();
  const int ny = game.y_size();
  QDC_EXPECT(nx <= 20, "classical_bias_exact: |X| too large to enumerate");
  double best = -1.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << nx); ++mask) {
    // Given Alice's signs a_x = +-1, Bob's optimal reply per column is the
    // sign of the column sum.
    double bias = 0.0;
    for (int y = 0; y < ny; ++y) {
      double column = 0.0;
      for (int x = 0; x < nx; ++x) {
        const double a = (mask >> x) & 1 ? -1.0 : 1.0;
        column += a * game.signed_weight(x, y);
      }
      bias += std::abs(column);
    }
    best = std::max(best, bias);
  }
  return best;
}

namespace {

using Vec = std::vector<double>;

void normalize(Vec& v) {
  double n = 0.0;
  for (double c : v) n += c * c;
  n = std::sqrt(n);
  if (n < 1e-15) {
    v.assign(v.size(), 0.0);
    v[0] = 1.0;
    return;
  }
  for (double& c : v) c /= n;
}

}  // namespace

double quantum_bias_tsirelson(const XorGame& game, Rng& rng, int restarts,
                              int iterations) {
  game.validate();
  QDC_EXPECT(restarts >= 1 && iterations >= 1,
             "quantum_bias_tsirelson: bad parameters");
  const int nx = game.x_size();
  const int ny = game.y_size();
  const int dim = nx + ny;  // Tsirelson: dimension |X|+|Y| suffices
  std::normal_distribution<double> gauss(0.0, 1.0);

  double best = 0.0;
  for (int attempt = 0; attempt < restarts; ++attempt) {
    std::vector<Vec> u(static_cast<std::size_t>(nx),
                       Vec(static_cast<std::size_t>(dim)));
    std::vector<Vec> v(static_cast<std::size_t>(ny),
                       Vec(static_cast<std::size_t>(dim)));
    for (auto& vec : u) {
      for (double& c : vec) c = gauss(rng);
      normalize(vec);
    }
    for (auto& vec : v) {
      for (double& c : vec) c = gauss(rng);
      normalize(vec);
    }
    for (int it = 0; it < iterations; ++it) {
      // u_x <- normalize(sum_y M[x][y] v_y)
      for (int x = 0; x < nx; ++x) {
        Vec acc(static_cast<std::size_t>(dim), 0.0);
        for (int y = 0; y < ny; ++y) {
          const double m = game.signed_weight(x, y);
          for (int d = 0; d < dim; ++d) {
            acc[static_cast<std::size_t>(d)] +=
                m * v[static_cast<std::size_t>(y)][static_cast<std::size_t>(d)];
          }
        }
        normalize(acc);
        u[static_cast<std::size_t>(x)] = std::move(acc);
      }
      // v_y <- normalize(sum_x M[x][y] u_x)
      for (int y = 0; y < ny; ++y) {
        Vec acc(static_cast<std::size_t>(dim), 0.0);
        for (int x = 0; x < nx; ++x) {
          const double m = game.signed_weight(x, y);
          for (int d = 0; d < dim; ++d) {
            acc[static_cast<std::size_t>(d)] +=
                m * u[static_cast<std::size_t>(x)][static_cast<std::size_t>(d)];
          }
        }
        normalize(acc);
        v[static_cast<std::size_t>(y)] = std::move(acc);
      }
    }
    double bias = 0.0;
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) {
        double dot = 0.0;
        for (int d = 0; d < dim; ++d) {
          dot += u[static_cast<std::size_t>(x)][static_cast<std::size_t>(d)] *
                 v[static_cast<std::size_t>(y)][static_cast<std::size_t>(d)];
        }
        bias += game.signed_weight(x, y) * dot;
      }
    }
    best = std::max(best, bias);
  }
  return best;
}

}  // namespace qdc::nonlocal
