// Two-player nonlocal XOR games (Section 6 / Appendix B.1).
//
// An XOR game is (pi, f): the referee draws (x, y) ~ pi, the players answer
// bits a, b without communicating, and they win iff a xor b = f(x, y). The
// *bias* is P(win) - P(lose).
//
//  * classical_bias_exact enumerates deterministic strategies (optimal by
//    convexity) - exponential in |X|, fine for the small games studied;
//  * quantum_bias_tsirelson uses Tsirelson's characterization: the
//    entangled bias equals  max  sum_{x,y} pi(x,y) (-1)^{f(x,y)} <u_x, v_y>
//    over unit vectors u_x, v_y, computed by alternating maximization with
//    restarts (each half-step is a closed-form normalization, so the value
//    increases monotonically; restarts guard against flat starts).
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace qdc::nonlocal {

struct XorGame {
  /// pi[x][y]: input distribution (must sum to 1).
  std::vector<std::vector<double>> pi;
  /// f[x][y] in {0,1}: target of a xor b.
  std::vector<std::vector<int>> f;

  int x_size() const { return static_cast<int>(pi.size()); }
  int y_size() const {
    return pi.empty() ? 0 : static_cast<int>(pi[0].size());
  }

  /// Signed, weighted game matrix M[x][y] = pi[x][y] * (-1)^f[x][y].
  double signed_weight(int x, int y) const;

  /// Validates shape and distribution; throws ContractError when malformed.
  void validate() const;

  /// The CHSH game: uniform inputs, f(x,y) = x AND y.
  static XorGame chsh();

  /// XOR game for an arbitrary boolean function under the uniform
  /// distribution.
  static XorGame uniform(const std::vector<std::vector<int>>& f);
};

/// Exact optimal classical (deterministic/shared-randomness) bias.
/// Requires |X| <= 20.
double classical_bias_exact(const XorGame& game);

/// Entangled bias via Tsirelson vectors (alternating maximization).
double quantum_bias_tsirelson(const XorGame& game, Rng& rng,
                              int restarts = 8, int iterations = 200);

inline double bias_to_win_probability(double bias) {
  return (1.0 + bias) / 2.0;
}

}  // namespace qdc::nonlocal
