// Length-prefixed binary wire protocol of the experiment service.
//
// Every message on a service connection is one *frame*:
//
//   offset  size  field
//   0       4     magic  'Q' 'D' 'C' 'S'
//   4       1     protocol version (kWireVersion)
//   5       1     message type (MessageType)
//   6       2     reserved, must be 0
//   8       4     payload length in bytes, little-endian (<= kMaxPayload)
//   12      N     payload
//
// All multi-byte integers, here and in every payload, are little-endian.
// The protocol is strictly request/response: a client sends one request
// frame and reads exactly one response frame before sending the next.
// docs/SERVICE.md is the normative spec (frame layout, payload of every
// message type, error codes, versioning rules); this header and that
// document must change together — qdc_lint's service doc-drift rule
// fails when a MessageType enumerator has no SERVICE.md section.
//
// Decoding is defensive: readers never trust a length field. WireReader
// throws ModelError (via QDC_CHECK) on truncation; the server catches it
// and answers ErrorResponse{MalformedPayload} instead of crashing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qdc::service {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::uint32_t kMaxPayload = 16u * 1024u * 1024u;
inline constexpr std::uint8_t kMagic[4] = {'Q', 'D', 'C', 'S'};

/// Frame discriminator. Requests have the high bit clear, responses have
/// it set; ErrorResponse may answer any request. Every enumerator here
/// must have a matching "#### <Name>" section in docs/SERVICE.md.
enum class MessageType : std::uint8_t {
  SubmitRequest = 0x01,    ///< enqueue a job (or serve it from cache)
  PollRequest = 0x02,      ///< query a submitted job's status/result
  CancelRequest = 0x03,    ///< cancel a still-queued job
  AdminRequest = 0x04,     ///< server statistics snapshot
  ShutdownRequest = 0x05,  ///< stop the server (optionally after drain)
  SubmitResponse = 0x81,
  PollResponse = 0x82,
  CancelResponse = 0x83,
  AdminResponse = 0x84,
  ShutdownResponse = 0x85,
  ErrorResponse = 0xFF,
};

/// Why a request (or a whole frame) was rejected. Stable wire values;
/// never renumber, only append.
enum class ErrorCode : std::uint16_t {
  None = 0,
  BadMagic = 1,            ///< frame does not start with 'QDCS'
  UnsupportedVersion = 2,  ///< frame version != kWireVersion
  UnknownMessageType = 3,  ///< type byte is not a request enumerator
  TruncatedFrame = 4,      ///< connection closed mid-frame
  OversizedFrame = 5,      ///< payload length exceeds kMaxPayload
  MalformedPayload = 6,    ///< payload does not parse as its type
  BadJobSpec = 7,          ///< spec failed validation (see message text)
  QueueFull = 8,           ///< bounded job queue rejected the submit
  UnknownJob = 9,          ///< job id is not (or no longer) registered
  NotCancellable = 10,     ///< job already running or terminal
  Draining = 11,           ///< server is shutting down; no new submits
  ExecutionFailed = 12,    ///< the job itself threw; message has details
};

/// Lifecycle of a submitted job (docs/SERVICE.md has the state diagram).
/// Queued and Running are transient; everything >= Done is terminal.
enum class JobState : std::uint8_t {
  Queued = 1,
  Running = 2,
  Done = 3,
  Cancelled = 4,
  Expired = 5,
  Failed = 6,
};

bool is_terminal(JobState s);

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void bytes(const std::uint8_t* data, std::size_t size);
  void str(const std::string& s);  ///< u32 length + raw bytes

  const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Little-endian payload cursor. Every read checks the remaining length
/// and throws ModelError on truncation; callers translate that into
/// ErrorCode::MalformedPayload.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::vector<std::uint8_t> bytes(std::size_t size);
  std::string str();  ///< u32 length + raw bytes

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// A parsed frame header.
struct FrameHeader {
  std::uint8_t version = 0;
  MessageType type = MessageType::ErrorResponse;
  std::uint32_t payload_size = 0;
};

/// Serializes header + payload into one contiguous frame.
std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& payload);

/// Parses the 12-byte header. Returns ErrorCode::None and fills `out` on
/// success; otherwise names the first violated rule (magic, version,
/// size). The type byte is NOT validated here — a response-decoder knows
/// which types it expects.
ErrorCode parse_frame_header(const std::uint8_t* header, FrameHeader* out);

/// Whether `type` is a request a server must answer.
bool is_request(MessageType type);

/// Stable display name of a message type ("SubmitRequest", ...).
const char* message_type_name(MessageType type);

/// Stable display name of an error code ("QueueFull", ...).
const char* error_code_name(ErrorCode code);

/// Stable display name of a job state ("Queued", ...).
const char* job_state_name(JobState state);

// ---------------------------------------------------------------------
// Typed payloads. Each struct has encode() -> payload bytes and a static
// decode(reader) that throws ModelError (via QDC_CHECK) on malformed
// input. docs/SERVICE.md lists the field layouts normatively.

/// Status block shared by SubmitResponse and PollResponse.
struct JobStatus {
  std::uint64_t job_id = 0;
  JobState state = JobState::Queued;
  bool cached = false;           ///< result came from the result cache
  ErrorCode error = ErrorCode::None;  ///< set when state == Failed
  std::string error_message;     ///< empty unless state == Failed
  std::uint64_t wall_us = 0;     ///< submit -> terminal (0 without a clock)
  std::uint64_t compute_us = 0;  ///< executor time (0 for cache hits)
  std::vector<std::uint8_t> result;  ///< present iff state == Done

  std::vector<std::uint8_t> encode() const;
  static JobStatus decode(WireReader& r);
};

struct ErrorBody {
  ErrorCode code = ErrorCode::None;
  std::string message;

  std::vector<std::uint8_t> encode() const;
  static ErrorBody decode(WireReader& r);
};

/// Admin statistics snapshot: a fixed-order block of u64 counters. New
/// counters are appended (never reordered); decoders ignore trailing
/// fields they do not know, which is the protocol's forward-compat rule.
struct AdminStats {
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_expired = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_capacity_bytes = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t total_wall_us = 0;
  std::uint64_t total_compute_us = 0;
  std::uint64_t max_wall_us = 0;
  std::uint64_t max_compute_us = 0;

  std::vector<std::uint8_t> encode() const;
  static AdminStats decode(WireReader& r);
};

}  // namespace qdc::service
