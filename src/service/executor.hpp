// Deterministic job execution: canonical JobSpec -> canonical result bytes.
//
// execute_job builds the requested topology view, wraps it in a
// congest::Network, runs the requested algorithm with serial inner
// RunOptions (the service parallelizes *across* jobs, like the sweep
// layer — see docs/EXPERIMENT_PIPELINE.md for why two-level fan-out is
// counterproductive), and serializes the outcome into the fixed
// little-endian result layout of docs/SERVICE.md. Equal specs yield
// byte-identical payloads on every execution, which is the whole basis
// of the content-addressed result cache; ServiceServer.CacheHitByteIdentical
// pins it end to end.
//
// This file contains no clocks, no randomness beyond the seeds in the
// spec, and no I/O: it is the pure core the server wraps.
#pragma once

#include <cstdint>
#include <vector>

#include "service/job_spec.hpp"

namespace qdc::service {

inline constexpr std::uint8_t kResultVersion = 1;

/// Per-node detail vectors (MST component labels) are folded into the
/// payload always, but inlined verbatim only up to this many entries.
inline constexpr std::uint32_t kInlineDetailLimit = 4096;

/// Decoded form of a result payload (the wire layout is the canonical
/// artifact; this struct is a convenience for clients, tests and the
/// CLI).
struct ResultSummary {
  AlgorithmKind algorithm = AlgorithmKind::Census;
  std::uint32_t nodes = 0;
  std::uint32_t edges = 0;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;  ///< 0 when the driver reports rounds only
  std::uint64_t fields = 0;
  std::int64_t value0 = 0;  ///< per-algorithm; see docs/SERVICE.md
  std::int64_t value1 = 0;
  std::int64_t value2 = 0;
  std::uint64_t detail_fold = 0;  ///< FNV-1a over the full detail vector
  std::vector<std::int64_t> details;  ///< inlined iff small enough
};

/// Runs the (already validated) spec to completion and returns the
/// canonical result payload. Throws ContractError/ModelError on
/// violations; the server maps those to ExecutionFailed.
std::vector<std::uint8_t> execute_job(const JobSpec& spec);

/// Parses a canonical result payload; throws ModelError when malformed.
ResultSummary decode_result(const std::vector<std::uint8_t>& payload);

}  // namespace qdc::service
