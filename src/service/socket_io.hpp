// Minimal POSIX socket plumbing for the experiment service.
//
// One RAII fd wrapper plus the four operations the server and client
// share: listen on / connect to a unix-domain socket path, and move one
// whole frame (service/wire.hpp layout) across a stream socket. All
// writes use MSG_NOSIGNAL so a peer that disconnected mid-job surfaces
// as an error return, never as SIGPIPE. Frame reads distinguish "clean
// EOF before any byte" (ReadStatus::Eof — the peer simply hung up
// between requests) from every malformed-frame condition, which carries
// the precise ErrorCode the server echoes back before closing.
//
// This is the only file in src/service/ that talks to the OS; everything
// above it (wire encoding, cache, queue, executor, server logic) is
// testable without a socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace qdc::service {

/// Owning file descriptor (closes on destruction; move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain stream socket at `path`, replacing
/// any stale socket file. Throws ModelError on any syscall failure.
Fd listen_unix(const std::string& path, int backlog);

/// Connects to the unix-domain socket at `path`. Throws ModelError when
/// the server is not there.
Fd connect_unix(const std::string& path);

/// Accepts one connection; invalid Fd when the listener was shut down.
Fd accept_connection(const Fd& listener);

/// Half-closes + closes a socket so a blocked peer read wakes up.
void shutdown_socket(const Fd& fd);

enum class ReadStatus {
  Ok,        ///< header + payload read completely
  Eof,       ///< clean close before the first header byte
  Malformed, ///< header invalid or stream ended mid-frame; see error
};

struct ReadFrameResult {
  ReadStatus status = ReadStatus::Eof;
  ErrorCode error = ErrorCode::None;  ///< set when status == Malformed
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Reads exactly one frame. Blocks until the frame is complete, the peer
/// closes, or the fd is shut down.
ReadFrameResult read_frame(const Fd& fd);

/// Writes header + payload; false when the peer is gone (EPIPE and
/// friends), which callers treat as a disconnect, never an error to
/// propagate.
bool write_frame(const Fd& fd, MessageType type,
                 const std::vector<std::uint8_t>& payload);

/// Writes raw bytes with no framing. Exists for protocol tests that
/// must put deliberately malformed frames on the wire; everything else
/// goes through write_frame.
bool write_bytes(const Fd& fd, const std::uint8_t* data, std::size_t size);

}  // namespace qdc::service
