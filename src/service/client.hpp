// Typed client for the experiment service wire protocol.
//
// One ServiceClient owns one connection and speaks the strict
// request/response discipline of docs/SERVICE.md: every call writes one
// request frame and blocks for exactly one response frame. Outcomes are
// returned, not thrown: every *Result carries `error == ErrorCode::None`
// on success, the server's ErrorResponse code otherwise — so expected
// conditions (QueueFull backpressure, UnknownJob, NotCancellable,
// Draining) are plain data the caller branches on. A broken transport
// (server gone mid-call) surfaces as ErrorCode::TruncatedFrame with a
// "connection closed" message.
//
// send_raw()/read_raw() bypass the typed layer so tests (and nothing
// else) can write deliberately malformed frames and observe the server's
// error answers byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/job_spec.hpp"
#include "service/socket_io.hpp"
#include "service/wire.hpp"

namespace qdc::service {

struct SubmitOptions {
  /// Block until the job is terminal and return its full status (the
  /// default). When false, the response carries only {job_id, Queued}
  /// and the caller polls.
  bool wait = true;

  /// Queue-wait deadline in ticks of the server's tick source; 0 = none.
  std::uint64_t timeout_us = 0;
};

struct SubmitResult {
  ErrorCode error = ErrorCode::None;
  std::string error_message;
  JobStatus status;  ///< valid iff error == None
};

struct PollResult {
  ErrorCode error = ErrorCode::None;
  std::string error_message;
  JobStatus status;  ///< valid iff error == None
};

struct CancelResult {
  ErrorCode error = ErrorCode::None;  ///< NotCancellable / UnknownJob here
  std::string error_message;
};

struct AdminResult {
  ErrorCode error = ErrorCode::None;
  std::string error_message;
  AdminStats stats;  ///< valid iff error == None
};

struct ShutdownResult {
  ErrorCode error = ErrorCode::None;
  std::string error_message;
  bool drain = false;  ///< the mode the server acknowledged
};

class ServiceClient {
 public:
  /// Connects immediately; throws ModelError when the server is absent.
  explicit ServiceClient(const std::string& socket_path);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  SubmitResult submit(const JobSpec& spec, const SubmitOptions& options = {});
  PollResult poll(std::uint64_t job_id);
  CancelResult cancel(std::uint64_t job_id);
  AdminResult admin();
  ShutdownResult shutdown_server(bool drain);

  /// Raw escape hatches for protocol tests: write arbitrary bytes / read
  /// one frame without type checking.
  bool send_raw(const std::vector<std::uint8_t>& bytes);
  ReadFrameResult read_raw();

  bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

 private:
  /// Writes one request and reads one response. Fills `out_type` and
  /// `out_payload`; ErrorCode::None on transport success.
  ErrorCode transact(MessageType request,
                     const std::vector<std::uint8_t>& payload,
                     MessageType* out_type,
                     std::vector<std::uint8_t>* out_payload);

  Fd fd_;
};

}  // namespace qdc::service
