#include "service/job_spec.hpp"

#include <string>

#include "service/wire.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace qdc::service {
namespace {

// Result-count caps: the server executes untrusted specs, so the spec
// validator bounds the instance size before any allocation happens. The
// limits are generous (a 2^21-node census is minutes, not hours) but
// keep a single bad request from exhausting the host.
constexpr std::uint32_t kMaxNodes = 1u << 21;
constexpr std::uint32_t kMaxEdges = 1u << 23;
constexpr std::uint32_t kMaxGamma = 4096;
constexpr std::uint32_t kMaxLength = 65536;
constexpr std::uint32_t kMaxBandwidthFields = 4096;
constexpr std::uint32_t kMaxRoundBudget = 10'000'000;

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(digits[(v >> shift) & 0xF]);
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> JobSpec::encode_canonical() const {
  WireWriter w;
  w.u8(kJobSpecVersion);
  w.u8(static_cast<std::uint8_t>(topology));
  w.u8(static_cast<std::uint8_t>(algorithm));
  w.u8(0);  // reserved
  w.u32(nodes);
  w.u32(arity);
  w.u32(edges);
  w.u32(gamma);
  w.u32(length);
  w.u32(bandwidth);
  w.u32(max_rounds);
  w.u64(topology_seed);
  w.u64(shared_seed);
  QDC_EXPECT(w.data().size() == kJobSpecEncodedSize,
             "canonical JobSpec encoding drifted from kJobSpecEncodedSize");
  return w.take();
}

JobSpec JobSpec::decode(WireReader& r) {
  std::uint8_t version = r.u8();
  QDC_CHECK(version == kJobSpecVersion,
            "JobSpec: unsupported spec version " + std::to_string(version));
  JobSpec spec;
  std::uint8_t topology = r.u8();
  QDC_CHECK(topology >= 1 && topology <= 5, "JobSpec: unknown topology kind");
  spec.topology = static_cast<TopologyKind>(topology);
  std::uint8_t algorithm = r.u8();
  QDC_CHECK(algorithm >= 1 && algorithm <= 3, "JobSpec: unknown algorithm");
  spec.algorithm = static_cast<AlgorithmKind>(algorithm);
  std::uint8_t reserved = r.u8();
  QDC_CHECK(reserved == 0, "JobSpec: reserved byte must be 0");
  spec.nodes = r.u32();
  spec.arity = r.u32();
  spec.edges = r.u32();
  spec.gamma = r.u32();
  spec.length = r.u32();
  spec.bandwidth = r.u32();
  spec.max_rounds = r.u32();
  spec.topology_seed = r.u64();
  spec.shared_seed = r.u64();
  return spec;
}

std::string JobSpec::validate() const {
  // Canonicalization rule: a parameter a topology family does not use
  // must be zero. Without this, two byte-distinct encodings could name
  // the same experiment and the content-addressed cache would fracture.
  const bool uses_nodes = topology != TopologyKind::LbNetwork;
  const bool uses_arity = topology == TopologyKind::Tree;
  const bool uses_edges = topology == TopologyKind::Gnm;
  const bool uses_lb = topology == TopologyKind::LbNetwork;
  if (!uses_nodes && nodes != 0) return "nodes must be 0 for lb_network";
  if (!uses_arity && arity != 0) return "arity is only valid for tree";
  if (!uses_edges && edges != 0) return "edges is only valid for gnm";
  if (topology != TopologyKind::Gnm && topology_seed != 0) {
    return "topology_seed is only valid for gnm";
  }
  if (!uses_lb && (gamma != 0 || length != 0)) {
    return "gamma/length are only valid for lb_network";
  }

  switch (topology) {
    case TopologyKind::Path:
      if (nodes < 2) return "path needs nodes >= 2";
      break;
    case TopologyKind::Cycle:
      if (nodes < 3) return "cycle needs nodes >= 3";
      break;
    case TopologyKind::Tree:
      if (nodes < 2) return "tree needs nodes >= 2";
      if (arity < 1) return "tree needs arity >= 1";
      break;
    case TopologyKind::Gnm:
      if (nodes < 2) return "gnm needs nodes >= 2";
      if (edges < nodes - 1) return "gnm needs edges >= nodes - 1";
      if (edges > kMaxEdges) return "gnm edge count exceeds the server cap";
      break;
    case TopologyKind::LbNetwork:
      if (gamma < 1) return "lb_network needs gamma >= 1";
      if (length < 2) return "lb_network needs length >= 2";
      if (gamma > kMaxGamma) return "lb_network gamma exceeds the server cap";
      if (length > kMaxLength) {
        return "lb_network length exceeds the server cap";
      }
      break;
  }
  if (uses_nodes && nodes > kMaxNodes) {
    return "node count exceeds the server cap";
  }

  if (bandwidth < 1) return "bandwidth must be >= 1";
  if (bandwidth > kMaxBandwidthFields) {
    return "bandwidth exceeds the server cap";
  }
  if (algorithm == AlgorithmKind::Mst && bandwidth < 6) {
    return "mst needs bandwidth >= 6";
  }
  if (max_rounds > kMaxRoundBudget) {
    return "max_rounds exceeds the server cap";
  }
  return "";
}

std::string JobSpec::summary() const {
  std::string out = algorithm_kind_name(algorithm);
  out += " ";
  out += topology_kind_name(topology);
  if (topology == TopologyKind::LbNetwork) {
    out += " gamma=" + std::to_string(gamma) +
           " L=" + std::to_string(length);
  } else {
    out += " n=" + std::to_string(nodes);
  }
  if (topology == TopologyKind::Tree) {
    out += " arity=" + std::to_string(arity);
  }
  if (topology == TopologyKind::Gnm) {
    out += " m=" + std::to_string(edges) + " tseed=" + hex64(topology_seed);
  }
  out += " B=" + std::to_string(bandwidth);
  out += " seed=" + hex64(shared_seed);
  return out;
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t cache_key(const JobSpec& spec) {
  const std::vector<std::uint8_t> canonical = spec.encode_canonical();
  return splitmix64(fnv1a64(canonical.data(), canonical.size()));
}

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Path: return "path";
    case TopologyKind::Cycle: return "cycle";
    case TopologyKind::Tree: return "tree";
    case TopologyKind::Gnm: return "gnm";
    case TopologyKind::LbNetwork: return "lb_network";
  }
  return "unknown";
}

const char* algorithm_kind_name(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::Census: return "census";
    case AlgorithmKind::Leader: return "leader";
    case AlgorithmKind::Mst: return "mst";
  }
  return "unknown";
}

bool parse_topology_kind(const std::string& name, TopologyKind* out) {
  for (TopologyKind kind :
       {TopologyKind::Path, TopologyKind::Cycle, TopologyKind::Tree,
        TopologyKind::Gnm, TopologyKind::LbNetwork}) {
    if (name == topology_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_algorithm_kind(const std::string& name, AlgorithmKind* out) {
  for (AlgorithmKind kind : {AlgorithmKind::Census, AlgorithmKind::Leader,
                             AlgorithmKind::Mst}) {
    if (name == algorithm_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace qdc::service
