// Content-addressed LRU result cache, bounded by payload bytes.
//
// Keys are cache_key(spec) content addresses (job_spec.hpp); values are
// the immutable result payloads the executor produced. Because the
// engine is deterministic, an entry never goes stale — eviction exists
// only to bound memory, and it is strictly LRU over (lookup-hit |
// insert) recency, so the eviction sequence is a pure function of the
// operation sequence (pinned by ServiceCache.LruEvictionDeterminism).
//
// Thread safety: all operations take an internal mutex; payloads are
// handed out as shared_ptr<const ...> so a hit stays valid after the
// entry is evicted. Counters (hits/misses/evictions/...) are part of the
// admin surface.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace qdc::service {

using ResultBytes = std::shared_ptr<const std::vector<std::uint8_t>>;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t rejected = 0;  ///< entries larger than the whole budget
  std::uint64_t bytes = 0;     ///< payload bytes currently resident
  std::uint64_t entries = 0;
  std::uint64_t capacity_bytes = 0;
};

class ResultCache {
 public:
  /// `capacity_bytes` bounds the sum of resident payload sizes. Zero is
  /// legal and makes every insert a rejection (a cache-off switch).
  explicit ResultCache(std::uint64_t capacity_bytes);

  /// Returns the payload for `key` and refreshes its recency, or null.
  /// Counts a hit or a miss.
  ResultBytes lookup(std::uint64_t key);

  /// Inserts (or refreshes) `key`. Evicts least-recently-used entries
  /// until the new entry fits; an entry bigger than the whole budget is
  /// counted `rejected` and not stored. Re-inserting an existing key
  /// refreshes recency and replaces the payload (a no-op for a
  /// deterministic engine, but the cache does not assume it).
  void insert(std::uint64_t key, ResultBytes payload);

  CacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    ResultBytes payload;
  };

  void evict_until_fits_locked(std::uint64_t incoming_size);

  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t rejected_ = 0;
  std::list<Entry> lru_;  // front = most recent, back = eviction victim
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace qdc::service
