// Canonical job specification: what a client asks the service to run.
//
// A JobSpec names a topology family (with its parameters), an algorithm,
// the CONGEST bandwidth, the shared-randomness seed, and a round budget.
// Because the whole engine is deterministic — bit-identical at any thread
// count, frontier mode result-invariant — the spec alone determines the
// result bytes, which is what makes the content-addressed result cache
// sound: two requests with equal canonical encodings MUST produce equal
// results, forever.
//
// The canonical encoding (encode_canonical) is therefore deliberately
// narrow: it contains every result-determining field in a fixed order
// with fixed widths, and nothing else. Execution details that cannot
// change the result (worker threads, wait-vs-poll, timeouts) never enter
// the encoding, so a 1-thread and an 8-thread submission of the same
// experiment share one cache entry. docs/SERVICE.md specifies the layout
// byte by byte and walks a worked cache-key example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qdc::service {

class WireReader;

/// Topology families the executor can instantiate. Stable wire values.
enum class TopologyKind : std::uint8_t {
  Path = 1,       ///< congest::PathView(nodes)
  Cycle = 2,      ///< congest::CycleView(nodes)
  Tree = 3,       ///< congest::BalancedTreeView(nodes, arity)
  Gnm = 4,        ///< congest::GnmView(nodes, edges, topology_seed)
  LbNetwork = 5,  ///< core::LbTopologyView(gamma, length)
};

/// Algorithms the executor can run. Stable wire values.
enum class AlgorithmKind : std::uint8_t {
  Census = 1,  ///< dist::run_census: leader election + BFS census
  Leader = 2,  ///< dist::elect_leader: flood-max election
  Mst = 3,     ///< dist::build_bfs_tree + dist::run_mst (unit weights)
};

/// Version byte leading every canonical spec encoding. Bump only when a
/// field is added/retired; old encodings must never be reinterpreted.
inline constexpr std::uint8_t kJobSpecVersion = 1;

/// Fixed size in bytes of one canonically encoded spec.
inline constexpr std::size_t kJobSpecEncodedSize = 48;

struct JobSpec {
  TopologyKind topology = TopologyKind::Path;
  AlgorithmKind algorithm = AlgorithmKind::Census;
  std::uint32_t nodes = 0;          ///< Path/Cycle/Tree/Gnm node count
  std::uint32_t arity = 0;          ///< Tree only; 0 elsewhere
  std::uint32_t edges = 0;          ///< Gnm only; 0 elsewhere
  std::uint32_t gamma = 0;          ///< LbNetwork only; 0 elsewhere
  std::uint32_t length = 0;         ///< LbNetwork only; 0 elsewhere
  std::uint32_t bandwidth = 8;      ///< CONGEST(B) fields per edge per round
  std::uint32_t max_rounds = 0;     ///< 0 = the algorithm's own default
  std::uint64_t topology_seed = 0;  ///< Gnm only; 0 elsewhere
  std::uint64_t shared_seed = 0x9e3779b97f4a7c15ULL;

  bool operator==(const JobSpec&) const = default;

  /// The canonical kJobSpecEncodedSize-byte encoding (docs/SERVICE.md).
  std::vector<std::uint8_t> encode_canonical() const;

  /// Decodes a canonical encoding; throws ModelError on a malformed or
  /// wrong-version block.
  static JobSpec decode(WireReader& r);

  /// Empty string when the spec is executable; otherwise the first
  /// violated rule, suitable for a BadJobSpec error message.
  std::string validate() const;

  /// Short display line ("mst path n=1024 B=8 seed=0x...") for logs.
  std::string summary() const;
};

/// FNV-1a 64-bit over a byte range — the first half of the cache key.
/// Offset basis 0xcbf29ce484222325, prime 0x100000001b3.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// Content-address of a spec: splitmix64(fnv1a64(encode_canonical())).
/// The splitmix64 finalizer decorrelates the low bits FNV leaves weak so
/// the key is usable directly as a hash-table index.
std::uint64_t cache_key(const JobSpec& spec);

/// Stable display name of a topology kind ("path", "lb_network", ...).
const char* topology_kind_name(TopologyKind kind);

/// Stable display name of an algorithm ("census", "mst", ...).
const char* algorithm_kind_name(AlgorithmKind kind);

/// Parses a display name back to the enum; returns false on no match.
bool parse_topology_kind(const std::string& name, TopologyKind* out);
bool parse_algorithm_kind(const std::string& name, AlgorithmKind* out);

}  // namespace qdc::service
