#include "service/client.hpp"

#include <exception>
#include <utility>

#include "util/expect.hpp"

namespace qdc::service {
namespace {

constexpr std::uint8_t kSubmitFlagWait = 0x01;

/// Shared tail of every typed call: classify the response frame.
/// Returns None when `type` is the expected response; fills the error
/// fields otherwise (ErrorResponse is decoded, anything else is a
/// protocol violation by the server).
ErrorCode classify(MessageType type, const std::vector<std::uint8_t>& payload,
                   MessageType expected, std::string* message) {
  if (type == expected) return ErrorCode::None;
  if (type == MessageType::ErrorResponse) {
    try {
      WireReader r(payload);
      ErrorBody body = ErrorBody::decode(r);
      *message = body.message;
      return body.code;
    } catch (const std::exception& e) {
      *message = e.what();
      return ErrorCode::MalformedPayload;
    }
  }
  *message = std::string("unexpected response type: ") +
             message_type_name(type);
  return ErrorCode::UnknownMessageType;
}

}  // namespace

ServiceClient::ServiceClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

ErrorCode ServiceClient::transact(MessageType request,
                                  const std::vector<std::uint8_t>& payload,
                                  MessageType* out_type,
                                  std::vector<std::uint8_t>* out_payload) {
  if (!fd_.valid() || !write_frame(fd_, request, payload)) {
    fd_.reset();
    return ErrorCode::TruncatedFrame;
  }
  ReadFrameResult frame = read_frame(fd_);
  if (frame.status != ReadStatus::Ok) {
    fd_.reset();
    return frame.status == ReadStatus::Malformed ? frame.error
                                                 : ErrorCode::TruncatedFrame;
  }
  *out_type = frame.header.type;
  *out_payload = std::move(frame.payload);
  return ErrorCode::None;
}

SubmitResult ServiceClient::submit(const JobSpec& spec,
                                   const SubmitOptions& options) {
  WireWriter w;
  w.u8(options.wait ? kSubmitFlagWait : 0);
  w.u64(options.timeout_us);
  const std::vector<std::uint8_t> spec_bytes = spec.encode_canonical();
  w.bytes(spec_bytes.data(), spec_bytes.size());

  SubmitResult result;
  MessageType type{};
  std::vector<std::uint8_t> payload;
  result.error = transact(MessageType::SubmitRequest, w.take(), &type,
                          &payload);
  if (result.error != ErrorCode::None) {
    result.error_message = "connection closed";
    return result;
  }
  result.error = classify(type, payload, MessageType::SubmitResponse,
                          &result.error_message);
  if (result.error != ErrorCode::None) return result;
  try {
    WireReader r(payload);
    result.status = JobStatus::decode(r);
  } catch (const std::exception& e) {
    result.error = ErrorCode::MalformedPayload;
    result.error_message = e.what();
  }
  return result;
}

PollResult ServiceClient::poll(std::uint64_t job_id) {
  // Id 0 is the inline cache-hit sentinel; the server never registers it.
  QDC_EXPECT(job_id != 0, "poll: job id 0 is never a registered job");
  WireWriter w;
  w.u64(job_id);

  PollResult result;
  MessageType type{};
  std::vector<std::uint8_t> payload;
  result.error =
      transact(MessageType::PollRequest, w.take(), &type, &payload);
  if (result.error != ErrorCode::None) {
    result.error_message = "connection closed";
    return result;
  }
  result.error = classify(type, payload, MessageType::PollResponse,
                          &result.error_message);
  if (result.error != ErrorCode::None) return result;
  try {
    WireReader r(payload);
    result.status = JobStatus::decode(r);
  } catch (const std::exception& e) {
    result.error = ErrorCode::MalformedPayload;
    result.error_message = e.what();
  }
  return result;
}

CancelResult ServiceClient::cancel(std::uint64_t job_id) {
  QDC_EXPECT(job_id != 0, "cancel: job id 0 is never a registered job");
  WireWriter w;
  w.u64(job_id);

  CancelResult result;
  MessageType type{};
  std::vector<std::uint8_t> payload;
  result.error =
      transact(MessageType::CancelRequest, w.take(), &type, &payload);
  if (result.error != ErrorCode::None) {
    result.error_message = "connection closed";
    return result;
  }
  result.error = classify(type, payload, MessageType::CancelResponse,
                          &result.error_message);
  return result;
}

AdminResult ServiceClient::admin() {
  AdminResult result;
  MessageType type{};
  std::vector<std::uint8_t> payload;
  result.error = transact(MessageType::AdminRequest, {}, &type, &payload);
  if (result.error != ErrorCode::None) {
    result.error_message = "connection closed";
    return result;
  }
  result.error = classify(type, payload, MessageType::AdminResponse,
                          &result.error_message);
  if (result.error != ErrorCode::None) return result;
  try {
    WireReader r(payload);
    result.stats = AdminStats::decode(r);
  } catch (const std::exception& e) {
    result.error = ErrorCode::MalformedPayload;
    result.error_message = e.what();
  }
  return result;
}

ShutdownResult ServiceClient::shutdown_server(bool drain) {
  WireWriter w;
  w.u8(drain ? 1 : 0);

  ShutdownResult result;
  MessageType type{};
  std::vector<std::uint8_t> payload;
  result.error =
      transact(MessageType::ShutdownRequest, w.take(), &type, &payload);
  if (result.error != ErrorCode::None) {
    result.error_message = "connection closed";
    return result;
  }
  result.error = classify(type, payload, MessageType::ShutdownResponse,
                          &result.error_message);
  if (result.error != ErrorCode::None) return result;
  try {
    WireReader r(payload);
    result.drain = r.u8() != 0;
  } catch (const std::exception& e) {
    result.error = ErrorCode::MalformedPayload;
    result.error_message = e.what();
  }
  return result;
}

bool ServiceClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  if (!fd_.valid()) return false;
  return write_bytes(fd_, bytes.data(), bytes.size());
}

ReadFrameResult ServiceClient::read_raw() { return read_frame(fd_); }

}  // namespace qdc::service
