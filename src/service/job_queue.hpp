// Bounded FIFO job queue + job registry of the experiment server.
//
// The queue is the server's single admission point: submits either get a
// job id (FIFO position) or are rejected with QueueFull — backpressure
// is explicit and immediate, never a silent buffer. A dispatcher drains
// the queue in batches (pop_batch blocks until work or close), executes
// each batch on the sweep machinery, and reports terminal states back
// through complete()/fail(). Connection handlers that chose to wait
// block in wait_terminal(); every terminal transition broadcasts.
//
// Cancellation has exactly one semantics: a job can be cancelled while
// Queued and never after — pop_batch atomically moves Queued jobs to
// Running, so cancel() and dispatch can race without a job ever running
// half-cancelled. Timeouts are queue-wait deadlines measured in ticks of
// the injected tick source (service/stats-free: the library never reads
// a wall clock; the daemon injects one, tests inject counters): a job
// whose deadline passed before its batch started is marked Expired and
// skipped.
//
// Terminal records are retained for polling in a bounded completion ring
// (kRetainedTerminal); the oldest are forgotten first, after which polls
// answer UnknownJob.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "service/wire.hpp"

namespace qdc::service {

/// Monotonic microsecond source. A null function disables every timeout
/// and zeroes all timings — the library itself never reads a clock.
using TickSource = std::function<std::uint64_t()>;

/// Everything the server remembers about one submitted job.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  std::uint64_t key = 0;  ///< cache_key(spec)
  JobState state = JobState::Queued;
  bool cached = false;
  ErrorCode error = ErrorCode::None;
  std::string error_message;
  std::uint64_t submit_tick = 0;
  std::uint64_t timeout_us = 0;  ///< queue-wait deadline; 0 = none
  std::uint64_t wall_us = 0;     ///< submit -> terminal
  std::uint64_t compute_us = 0;  ///< executor time (0 for cache hits)
  ResultBytes result;            ///< set iff state == Done
};

struct QueueCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_full = 0;
};

class JobQueue {
 public:
  /// At most `capacity` jobs may be Queued at once; `tick` provides
  /// submit/terminal timestamps (null = no clock, no timeouts).
  JobQueue(int capacity, TickSource tick);

  /// FIFO-admits a job. Returns the new job id, or 0 when the queue is
  /// full or closed (counted rejected_full; callers answer QueueFull /
  /// Draining). Ids start at 1 and increase in admission order.
  std::uint64_t submit(const JobSpec& spec, std::uint64_t key,
                       std::uint64_t timeout_us);

  /// Blocks until at least one job is Queued or the queue is closed.
  /// Dequeues up to `max_jobs` ids in FIFO order and atomically moves
  /// them Queued -> Running (jobs whose queue-wait deadline has passed
  /// become Expired instead and are not returned). May return empty when
  /// every dequeued entry had been cancelled or expired; an empty return
  /// with closed() true means fully drained — dispatchers loop on
  /// `batch.empty() && closed()`.
  std::vector<std::uint64_t> pop_batch(int max_jobs);

  /// Cancels `id` iff it is still Queued. Returns the resulting state,
  /// or nullopt for unknown ids.
  std::optional<JobState> cancel(std::uint64_t id);

  /// Terminal transitions, called by the dispatcher.
  void complete(std::uint64_t id, ResultBytes result, bool cached,
                std::uint64_t compute_us);
  void fail(std::uint64_t id, ErrorCode code, const std::string& message);

  /// Snapshot of one record (result shared, not copied); nullopt for
  /// unknown/forgotten ids.
  std::optional<JobRecord> status(std::uint64_t id) const;

  /// Blocks until `id` reaches a terminal state (or is unknown); returns
  /// its final record.
  std::optional<JobRecord> wait_terminal(std::uint64_t id);

  /// Rejects future submits and wakes every pop_batch/wait_terminal.
  /// Queued jobs stay queued: a draining dispatcher keeps popping until
  /// pop_batch returns empty.
  void close();

  /// Cancels every still-Queued job (the non-drain shutdown path, so no
  /// waiter blocks on a job that will never run).
  void cancel_all_queued();

  bool closed() const;

  /// Jobs currently Queued.
  int depth() const;

  /// Jobs currently Running.
  int in_flight() const;

  int capacity() const { return capacity_; }

  QueueCounters counters() const;

  /// Oldest terminal records beyond this many are forgotten.
  static constexpr int kRetainedTerminal = 4096;

 private:
  std::uint64_t now_us_locked() const;
  void finish_locked(JobRecord& rec, JobState state);
  void prune_terminal_locked();

  const int capacity_;
  const TickSource tick_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      // queued work / close
  std::condition_variable terminal_cv_;  // any terminal transition
  bool closed_ = false;
  std::uint64_t next_id_ = 1;
  std::deque<std::uint64_t> fifo_;  // Queued ids in admission order
  std::unordered_map<std::uint64_t, JobRecord> records_;
  std::deque<std::uint64_t> terminal_ring_;  // terminal ids, oldest first
  int running_ = 0;
  QueueCounters counters_;
};

}  // namespace qdc::service
