#include "service/job_queue.hpp"

#include <utility>

#include "util/expect.hpp"

namespace qdc::service {

JobQueue::JobQueue(int capacity, TickSource tick)
    : capacity_(capacity), tick_(std::move(tick)) {
  QDC_EXPECT(capacity >= 1, "JobQueue: capacity must be >= 1");
}

std::uint64_t JobQueue::now_us_locked() const {
  return tick_ ? tick_() : 0;
}

std::uint64_t JobQueue::submit(const JobSpec& spec, std::uint64_t key,
                               std::uint64_t timeout_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || static_cast<int>(fifo_.size()) >= capacity_) {
    ++counters_.rejected_full;
    return 0;
  }
  const std::uint64_t id = next_id_++;
  JobRecord rec;
  rec.id = id;
  rec.spec = spec;
  rec.key = key;
  rec.state = JobState::Queued;
  rec.submit_tick = now_us_locked();
  rec.timeout_us = timeout_us;
  records_.emplace(id, std::move(rec));
  fifo_.push_back(id);
  ++counters_.submitted;
  work_cv_.notify_one();
  return id;
}

std::vector<std::uint64_t> JobQueue::pop_batch(int max_jobs) {
  QDC_EXPECT(max_jobs >= 1, "JobQueue: pop_batch needs max_jobs >= 1");
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [&] { return closed_ || !fifo_.empty(); });
  std::vector<std::uint64_t> batch;
  const std::uint64_t now = now_us_locked();
  while (!fifo_.empty() && static_cast<int>(batch.size()) < max_jobs) {
    const std::uint64_t id = fifo_.front();
    fifo_.pop_front();
    auto it = records_.find(id);
    QDC_EXPECT(it != records_.end(), "JobQueue: queued id has no record");
    JobRecord& rec = it->second;
    if (rec.state != JobState::Queued) continue;  // cancelled while queued
    if (rec.timeout_us != 0 && tick_ &&
        now >= rec.submit_tick + rec.timeout_us) {
      finish_locked(rec, JobState::Expired);
      continue;
    }
    rec.state = JobState::Running;
    ++running_;
    batch.push_back(id);
  }
  return batch;
}

std::optional<JobState> JobQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  JobRecord& rec = it->second;
  if (rec.state == JobState::Queued) {
    finish_locked(rec, JobState::Cancelled);
    // The id stays in fifo_; pop_batch skips non-Queued entries.
  }
  return rec.state;
}

void JobQueue::complete(std::uint64_t id, ResultBytes result, bool cached,
                        std::uint64_t compute_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  QDC_EXPECT(it != records_.end() && it->second.state == JobState::Running,
             "JobQueue: complete() on a job that is not Running");
  JobRecord& rec = it->second;
  rec.result = std::move(result);
  rec.cached = cached;
  rec.compute_us = compute_us;
  --running_;
  finish_locked(rec, JobState::Done);
}

void JobQueue::fail(std::uint64_t id, ErrorCode code,
                    const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  QDC_EXPECT(it != records_.end() && it->second.state == JobState::Running,
             "JobQueue: fail() on a job that is not Running");
  JobRecord& rec = it->second;
  rec.error = code;
  rec.error_message = message;
  --running_;
  finish_locked(rec, JobState::Failed);
}

std::optional<JobRecord> JobQueue::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<JobRecord> JobQueue::wait_terminal(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = records_.find(id);
    if (it == records_.end()) return std::nullopt;
    if (is_terminal(it->second.state)) return it->second;
    terminal_cv_.wait(lock);
  }
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  work_cv_.notify_all();
  terminal_cv_.notify_all();
}

void JobQueue::cancel_all_queued() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t id : fifo_) {
    auto it = records_.find(id);
    if (it != records_.end() && it->second.state == JobState::Queued) {
      finish_locked(it->second, JobState::Cancelled);
    }
  }
  fifo_.clear();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int queued = 0;
  for (std::uint64_t id : fifo_) {
    auto it = records_.find(id);
    if (it != records_.end() && it->second.state == JobState::Queued) {
      ++queued;
    }
  }
  return queued;
}

int JobQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

QueueCounters JobQueue::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void JobQueue::finish_locked(JobRecord& rec, JobState state) {
  rec.state = state;
  const std::uint64_t now = now_us_locked();
  rec.wall_us = now >= rec.submit_tick ? now - rec.submit_tick : 0;
  switch (state) {
    case JobState::Done: ++counters_.completed; break;
    case JobState::Cancelled: ++counters_.cancelled; break;
    case JobState::Expired: ++counters_.expired; break;
    case JobState::Failed: ++counters_.failed; break;
    default: QDC_EXPECT(false, "JobQueue: finish_locked on non-terminal");
  }
  terminal_ring_.push_back(rec.id);
  prune_terminal_locked();
  terminal_cv_.notify_all();
}

void JobQueue::prune_terminal_locked() {
  while (static_cast<int>(terminal_ring_.size()) > kRetainedTerminal) {
    const std::uint64_t victim = terminal_ring_.front();
    terminal_ring_.pop_front();
    records_.erase(victim);
  }
}

}  // namespace qdc::service
