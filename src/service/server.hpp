// The experiment service daemon core: a long-lived server that accepts
// JobSpec requests over the length-prefixed wire protocol on a local
// unix-domain socket, multiplexes concurrent clients onto one bounded
// FIFO job queue, executes batches on the util::SweepRunner machinery,
// and serves repeated specs from the content-addressed result cache.
//
// Threading model (docs/SERVICE.md "Operations" section):
//
//   * one accept thread; one handler thread per connection (the protocol
//     is strictly request/response, so a connection is a session of
//     serial requests — a WAIT submit parks only its own connection);
//   * one dispatcher thread drains the queue in batches of at most
//     `workers` jobs and runs each batch on a SweepRunner. Job closures
//     write only batch-indexed slots; cache insertion and terminal
//     transitions happen serially in batch order afterwards, so the
//     cache's LRU/eviction sequence is a deterministic function of the
//     admission order, never of worker interleaving.
//
// Determinism contract: the server adds no entropy. Results come from
// execute_job (pure in the spec), timings come only from the injected
// TickSource (null = all timings zero, timeouts disabled) — src/service
// never reads a wall clock; the daemon binary in tools/service injects
// one, exactly as bench/harness.* does for the sweep layer.
//
// Shutdown: a ShutdownRequest (or Ctrl-C in the daemon) makes wait()
// return; the owner then calls stop(), which drains or cancels the
// queue (per the request's drain flag), joins the dispatcher, closes
// the listener and every connection, and joins all handler threads.
// stop() is idempotent and also runs from the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/socket_io.hpp"
#include "service/wire.hpp"
#include "util/sweep.hpp"

namespace qdc::service {

struct ServerOptions {
  std::string socket_path;

  /// Sweep workers executing job batches. 1 = serial (default);
  /// 0 = all hardware threads. Results are identical for every value.
  int workers = 1;

  /// Bounded FIFO admission: submits beyond this many queued jobs are
  /// rejected with QueueFull (explicit backpressure).
  int queue_capacity = 256;

  /// Result-cache budget in payload bytes.
  std::uint64_t cache_bytes = 64ull << 20;

  int listen_backlog = 16;

  /// Monotonic microsecond source for admin timings and queue-wait
  /// timeouts. Null (default) keeps src/ wall-clock-free: timings read
  /// as 0 and timeouts never fire.
  TickSource tick;
};

class ExperimentServer {
 public:
  explicit ExperimentServer(ServerOptions options);
  ~ExperimentServer();

  ExperimentServer(const ExperimentServer&) = delete;
  ExperimentServer& operator=(const ExperimentServer&) = delete;

  /// Binds the socket and starts the accept + dispatcher threads.
  /// Throws ModelError when the socket cannot be bound.
  void start();

  /// Blocks until a ShutdownRequest arrives or stop() is called from
  /// another thread.
  void wait();

  /// Stops the server: closes the queue (draining it first iff the
  /// pending shutdown asked to), joins the dispatcher, shuts every
  /// connection and joins all threads. Idempotent.
  void stop();

  bool running() const;

  /// Assembled admin snapshot (same data AdminRequest serves).
  AdminStats stats() const;

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct ConnSlot {
    Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct Timing {
    std::uint64_t total_wall_us = 0;
    std::uint64_t total_compute_us = 0;
    std::uint64_t max_wall_us = 0;
    std::uint64_t max_compute_us = 0;
  };

  void accept_loop();
  void dispatcher_loop();
  void run_batch(const std::vector<std::uint64_t>& batch);
  void connection_loop(ConnSlot* slot);

  /// Handles one well-formed frame; false = close the connection.
  bool dispatch_request(const Fd& fd, MessageType type,
                        const std::vector<std::uint8_t>& payload);
  bool handle_submit(const Fd& fd, WireReader& r);
  bool handle_poll(const Fd& fd, WireReader& r);
  bool handle_cancel(const Fd& fd, WireReader& r);
  bool handle_admin(const Fd& fd);
  bool handle_shutdown(const Fd& fd, WireReader& r);
  bool send_error(const Fd& fd, ErrorCode code, const std::string& message);

  void record_timing(std::uint64_t wall_us, std::uint64_t compute_us);
  std::uint64_t now_us() const { return options_.tick ? options_.tick() : 0; }

  static JobStatus status_from_record(const JobRecord& rec);

  ServerOptions options_;
  JobQueue queue_;
  ResultCache cache_;
  util::SweepRunner runner_;

  Fd listener_;
  std::thread accept_thread_;
  std::thread dispatcher_thread_;

  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<ConnSlot>> connections_;

  mutable std::mutex lifecycle_mutex_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool drain_on_stop_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> submits_accepted_{0};

  mutable std::mutex timing_mutex_;
  Timing timing_;
};

}  // namespace qdc::service
