#include "service/wire.hpp"

#include <cstring>

#include "util/expect.hpp"

namespace qdc::service {

bool is_terminal(JobState s) {
  return s == JobState::Done || s == JobState::Cancelled ||
         s == JobState::Expired || s == JobState::Failed;
}

void WireWriter::u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void WireWriter::bytes(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::uint8_t WireReader::u8() {
  QDC_CHECK(remaining() >= 1, "wire payload truncated reading u8");
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  QDC_CHECK(remaining() >= 2, "wire payload truncated reading u16");
  std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  QDC_CHECK(remaining() >= 4, "wire payload truncated reading u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  QDC_CHECK(remaining() >= 8, "wire payload truncated reading u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

std::int64_t WireReader::i64() { return static_cast<std::int64_t>(u64()); }

std::vector<std::uint8_t> WireReader::bytes(std::size_t size) {
  QDC_CHECK(remaining() >= size, "wire payload truncated reading bytes");
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return out;
}

std::string WireReader::str() {
  std::uint32_t size = u32();
  QDC_CHECK(remaining() >= size, "wire payload truncated reading string");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return out;
}

std::vector<std::uint8_t> encode_frame(
    MessageType type, const std::vector<std::uint8_t>& payload) {
  QDC_EXPECT(payload.size() <= kMaxPayload,
             "frame payload exceeds kMaxPayload");
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.insert(frame.end(), kMagic, kMagic + 4);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.push_back(0);
  frame.push_back(0);
  auto size = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::uint8_t>((size >> shift) & 0xFF));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

ErrorCode parse_frame_header(const std::uint8_t* header, FrameHeader* out) {
  if (std::memcmp(header, kMagic, 4) != 0) return ErrorCode::BadMagic;
  if (header[4] != kWireVersion) return ErrorCode::UnsupportedVersion;
  std::uint32_t size = 0;
  for (int i = 11; i >= 8; --i) {
    size = (size << 8) | header[i];
  }
  if (size > kMaxPayload) return ErrorCode::OversizedFrame;
  out->version = header[4];
  out->type = static_cast<MessageType>(header[5]);
  out->payload_size = size;
  return ErrorCode::None;
}

bool is_request(MessageType type) {
  switch (type) {
    case MessageType::SubmitRequest:
    case MessageType::PollRequest:
    case MessageType::CancelRequest:
    case MessageType::AdminRequest:
    case MessageType::ShutdownRequest:
      return true;
    default:
      return false;
  }
}

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::SubmitRequest: return "SubmitRequest";
    case MessageType::PollRequest: return "PollRequest";
    case MessageType::CancelRequest: return "CancelRequest";
    case MessageType::AdminRequest: return "AdminRequest";
    case MessageType::ShutdownRequest: return "ShutdownRequest";
    case MessageType::SubmitResponse: return "SubmitResponse";
    case MessageType::PollResponse: return "PollResponse";
    case MessageType::CancelResponse: return "CancelResponse";
    case MessageType::AdminResponse: return "AdminResponse";
    case MessageType::ShutdownResponse: return "ShutdownResponse";
    case MessageType::ErrorResponse: return "ErrorResponse";
  }
  return "Unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "None";
    case ErrorCode::BadMagic: return "BadMagic";
    case ErrorCode::UnsupportedVersion: return "UnsupportedVersion";
    case ErrorCode::UnknownMessageType: return "UnknownMessageType";
    case ErrorCode::TruncatedFrame: return "TruncatedFrame";
    case ErrorCode::OversizedFrame: return "OversizedFrame";
    case ErrorCode::MalformedPayload: return "MalformedPayload";
    case ErrorCode::BadJobSpec: return "BadJobSpec";
    case ErrorCode::QueueFull: return "QueueFull";
    case ErrorCode::UnknownJob: return "UnknownJob";
    case ErrorCode::NotCancellable: return "NotCancellable";
    case ErrorCode::Draining: return "Draining";
    case ErrorCode::ExecutionFailed: return "ExecutionFailed";
  }
  return "Unknown";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "Queued";
    case JobState::Running: return "Running";
    case JobState::Done: return "Done";
    case JobState::Cancelled: return "Cancelled";
    case JobState::Expired: return "Expired";
    case JobState::Failed: return "Failed";
  }
  return "Unknown";
}

std::vector<std::uint8_t> JobStatus::encode() const {
  WireWriter w;
  w.u64(job_id);
  w.u8(static_cast<std::uint8_t>(state));
  w.u8(cached ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(error));
  w.str(error_message);
  w.u64(wall_us);
  w.u64(compute_us);
  w.u32(static_cast<std::uint32_t>(result.size()));
  w.bytes(result.data(), result.size());
  return w.take();
}

JobStatus JobStatus::decode(WireReader& r) {
  JobStatus s;
  s.job_id = r.u64();
  std::uint8_t state = r.u8();
  QDC_CHECK(state >= 1 && state <= 6, "JobStatus: bad state byte");
  s.state = static_cast<JobState>(state);
  s.cached = r.u8() != 0;
  s.error = static_cast<ErrorCode>(r.u16());
  s.error_message = r.str();
  s.wall_us = r.u64();
  s.compute_us = r.u64();
  std::uint32_t result_size = r.u32();
  s.result = r.bytes(result_size);
  return s;
}

std::vector<std::uint8_t> ErrorBody::encode() const {
  WireWriter w;
  w.u16(static_cast<std::uint16_t>(code));
  w.u16(0);
  w.str(message);
  return w.take();
}

ErrorBody ErrorBody::decode(WireReader& r) {
  ErrorBody e;
  e.code = static_cast<ErrorCode>(r.u16());
  r.u16();  // reserved
  e.message = r.str();
  return e;
}

std::vector<std::uint8_t> AdminStats::encode() const {
  WireWriter w;
  w.u64(queue_depth);
  w.u64(queue_capacity);
  w.u64(in_flight);
  w.u64(jobs_submitted);
  w.u64(jobs_completed);
  w.u64(jobs_cancelled);
  w.u64(jobs_expired);
  w.u64(jobs_failed);
  w.u64(cache_hits);
  w.u64(cache_misses);
  w.u64(cache_evictions);
  w.u64(cache_bytes);
  w.u64(cache_capacity_bytes);
  w.u64(cache_entries);
  w.u64(total_wall_us);
  w.u64(total_compute_us);
  w.u64(max_wall_us);
  w.u64(max_compute_us);
  return w.take();
}

AdminStats AdminStats::decode(WireReader& r) {
  AdminStats s;
  s.queue_depth = r.u64();
  s.queue_capacity = r.u64();
  s.in_flight = r.u64();
  s.jobs_submitted = r.u64();
  s.jobs_completed = r.u64();
  s.jobs_cancelled = r.u64();
  s.jobs_expired = r.u64();
  s.jobs_failed = r.u64();
  s.cache_hits = r.u64();
  s.cache_misses = r.u64();
  s.cache_evictions = r.u64();
  s.cache_bytes = r.u64();
  s.cache_capacity_bytes = r.u64();
  s.cache_entries = r.u64();
  s.total_wall_us = r.u64();
  s.total_compute_us = r.u64();
  s.max_wall_us = r.u64();
  s.max_compute_us = r.u64();
  // Forward compatibility: a newer server may append counters; ignore
  // anything this decoder does not know about.
  return s;
}

}  // namespace qdc::service
