#include "service/server.hpp"

#include <exception>
#include <optional>
#include <utility>

#include "service/executor.hpp"
#include "service/job_spec.hpp"
#include "util/expect.hpp"

namespace qdc::service {
namespace {

/// SubmitRequest flag bits (docs/SERVICE.md).
constexpr std::uint8_t kSubmitFlagWait = 0x01;

}  // namespace

ExperimentServer::ExperimentServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity, options_.tick),
      cache_(options_.cache_bytes),
      runner_(util::SweepOptions{options_.workers, /*master_seed=*/0}) {
  QDC_EXPECT(!options_.socket_path.empty(),
             "ExperimentServer: socket_path must be set");
}

ExperimentServer::~ExperimentServer() { stop(); }

void ExperimentServer::start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    QDC_EXPECT(!started_, "ExperimentServer: start() called twice");
    started_ = true;
  }
  listener_ = listen_unix(options_.socket_path, options_.listen_backlog);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
}

void ExperimentServer::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  lifecycle_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
}

void ExperimentServer::stop() {
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    drain = drain_on_stop_;
  }
  lifecycle_cv_.notify_all();

  // 1. No new work; optionally abandon queued work. The dispatcher then
  //    finishes its in-flight batch (plus the backlog when draining) and
  //    exits, which also unblocks every wait_terminal.
  queue_.close();
  if (!drain) queue_.cancel_all_queued();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();

  // 2. Stop accepting; then wake every connection handler out of its
  //    blocking read so the threads can be joined.
  shutdown_socket(listener_);
  listener_.reset();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const auto& slot : connections_) shutdown_socket(slot->fd);
  for (const auto& slot : connections_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  connections_.clear();
}

bool ExperimentServer::running() const {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  return started_ && !stopped_;
}

AdminStats ExperimentServer::stats() const {
  AdminStats s;
  s.queue_depth = static_cast<std::uint64_t>(queue_.depth());
  s.queue_capacity = static_cast<std::uint64_t>(queue_.capacity());
  s.in_flight = static_cast<std::uint64_t>(queue_.in_flight());
  s.jobs_submitted = submits_accepted_.load();
  const QueueCounters q = queue_.counters();
  s.jobs_completed = q.completed;
  s.jobs_cancelled = q.cancelled;
  s.jobs_expired = q.expired;
  s.jobs_failed = q.failed;
  const CacheStats c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  s.cache_bytes = c.bytes;
  s.cache_capacity_bytes = c.capacity_bytes;
  s.cache_entries = c.entries;
  {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    s.total_wall_us = timing_.total_wall_us;
    s.total_compute_us = timing_.total_compute_us;
    s.max_wall_us = timing_.max_wall_us;
    s.max_compute_us = timing_.max_compute_us;
  }
  return s;
}

void ExperimentServer::accept_loop() {
  for (;;) {
    Fd conn = accept_connection(listener_);
    if (!conn.valid()) return;  // listener shut down: server stopping
    std::lock_guard<std::mutex> lock(conn_mutex_);
    // Reap handlers that already finished so an arrival-heavy workload
    // does not accumulate dead threads.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto slot = std::make_unique<ConnSlot>();
    slot->fd = std::move(conn);
    ConnSlot* raw = slot.get();
    slot->thread = std::thread([this, raw] { connection_loop(raw); });
    connections_.push_back(std::move(slot));
  }
}

void ExperimentServer::dispatcher_loop() {
  const int batch_max = runner_.worker_count();
  for (;;) {
    const std::vector<std::uint64_t> batch = queue_.pop_batch(batch_max);
    if (batch.empty()) {
      if (queue_.closed()) return;  // drained (or cancelled) and closing
      continue;  // every dequeued entry had been cancelled/expired
    }
    run_batch(batch);
  }
}

void ExperimentServer::run_batch(const std::vector<std::uint64_t>& batch) {
  // alignas keeps adjacent shard slots off one cache line: workers write
  // their own slot concurrently.
  struct alignas(64) Slot {
    bool ok = false;
    std::vector<std::uint8_t> payload;
    std::string error;
    std::uint64_t compute_us = 0;
  };
  const std::size_t count = batch.size();
  std::vector<Slot> slots(count);
  std::vector<JobSpec> specs(count);
  std::vector<std::uint64_t> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::optional<JobRecord> rec = queue_.status(batch[i]);
    QDC_EXPECT(rec.has_value(), "run_batch: popped id has no record");
    specs[i] = rec->spec;
    keys[i] = rec->key;
  }

  // Workers write only their batch-indexed slot; everything shared
  // (cache, queue, timing) is touched serially below, in batch order, so
  // cache admission/eviction order is independent of worker interleaving.
  runner_.run(static_cast<int>(count), [&](const util::SweepJob& job) {
    const auto idx = static_cast<std::size_t>(job.index);
    const std::uint64_t t0 = now_us();
    try {
      slots[idx].payload = execute_job(specs[idx]);
      slots[idx].ok = true;
    } catch (const std::exception& e) {
      slots[idx].error = e.what();
    }
    const std::uint64_t t1 = now_us();
    slots[idx].compute_us = t1 >= t0 ? t1 - t0 : 0;
  });

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t id = batch[i];
    // Record timing before the terminal transition: complete()/fail()
    // wake wait_terminal waiters, and a client that was unblocked by
    // that wakeup may immediately read admin stats.
    const std::optional<JobRecord> running = queue_.status(id);
    const std::uint64_t now = now_us();
    const std::uint64_t wall =
        running && now >= running->submit_tick ? now - running->submit_tick
                                               : 0;
    record_timing(wall, slots[i].compute_us);
    if (slots[i].ok) {
      auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(slots[i].payload));
      cache_.insert(keys[i], bytes);
      queue_.complete(id, std::move(bytes), /*cached=*/false,
                      slots[i].compute_us);
    } else {
      queue_.fail(id, ErrorCode::ExecutionFailed, slots[i].error);
    }
  }
}

void ExperimentServer::connection_loop(ConnSlot* slot) {
  for (;;) {
    const ReadFrameResult frame = read_frame(slot->fd);
    if (frame.status == ReadStatus::Eof) break;
    if (frame.status == ReadStatus::Malformed) {
      // Framing is broken; answer once and close — there is no way to
      // find the next frame boundary on this stream.
      send_error(slot->fd, frame.error, error_code_name(frame.error));
      break;
    }
    if (!is_request(frame.header.type)) {
      send_error(slot->fd, ErrorCode::UnknownMessageType,
                 "not a request type");
      break;
    }
    if (!dispatch_request(slot->fd, frame.header.type, frame.payload)) break;
  }
  // Half-close so the peer observes EOF as soon as the session ends. The
  // fd itself is closed by whoever joins this thread (the accept-loop
  // reaper or stop()) — never here, so stop()'s own shutdown sweep can
  // race-freely touch every slot.
  shutdown_socket(slot->fd);
  slot->done.store(true);
}

bool ExperimentServer::dispatch_request(
    const Fd& fd, MessageType type, const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  try {
    switch (type) {
      case MessageType::SubmitRequest:
        return handle_submit(fd, r);
      case MessageType::PollRequest:
        return handle_poll(fd, r);
      case MessageType::CancelRequest:
        return handle_cancel(fd, r);
      case MessageType::AdminRequest:
        return handle_admin(fd);
      case MessageType::ShutdownRequest:
        return handle_shutdown(fd, r);
      default:
        return send_error(fd, ErrorCode::UnknownMessageType,
                          "not a request type");
    }
  } catch (const std::exception& e) {
    // Payload-level decode failure: the frame boundary is intact, so the
    // connection stays usable after the error answer.
    return send_error(fd, ErrorCode::MalformedPayload, e.what());
  }
}

bool ExperimentServer::handle_submit(const Fd& fd, WireReader& r) {
  const std::uint64_t t0 = now_us();
  const std::uint8_t flags = r.u8();
  const std::uint64_t timeout_us = r.u64();
  const JobSpec spec = JobSpec::decode(r);
  QDC_CHECK(r.exhausted(), "SubmitRequest: trailing bytes");

  const std::string problem = spec.validate();
  if (!problem.empty()) {
    return send_error(fd, ErrorCode::BadJobSpec, problem);
  }
  if (queue_.closed()) {
    return send_error(fd, ErrorCode::Draining, "server is shutting down");
  }

  const std::uint64_t key = cache_key(spec);
  if (ResultBytes hit = cache_.lookup(key)) {
    submits_accepted_.fetch_add(1);
    JobStatus status;
    status.job_id = 0;  // served inline, never queued
    status.state = JobState::Done;
    status.cached = true;
    const std::uint64_t t1 = now_us();
    status.wall_us = t1 >= t0 ? t1 - t0 : 0;
    status.result = *hit;
    record_timing(status.wall_us, 0);
    return write_frame(fd, MessageType::SubmitResponse, status.encode());
  }

  const std::uint64_t id = queue_.submit(spec, key, timeout_us);
  if (id == 0) {
    return queue_.closed()
               ? send_error(fd, ErrorCode::Draining,
                            "server is shutting down")
               : send_error(fd, ErrorCode::QueueFull,
                            "job queue is at capacity");
  }
  submits_accepted_.fetch_add(1);

  if ((flags & kSubmitFlagWait) != 0) {
    const std::optional<JobRecord> rec = queue_.wait_terminal(id);
    if (!rec) {
      return send_error(fd, ErrorCode::UnknownJob, "job record expired");
    }
    return write_frame(fd, MessageType::SubmitResponse,
                       status_from_record(*rec).encode());
  }

  JobStatus status;
  status.job_id = id;
  status.state = JobState::Queued;
  return write_frame(fd, MessageType::SubmitResponse, status.encode());
}

bool ExperimentServer::handle_poll(const Fd& fd, WireReader& r) {
  const std::uint64_t id = r.u64();
  QDC_CHECK(r.exhausted(), "PollRequest: trailing bytes");
  const std::optional<JobRecord> rec = queue_.status(id);
  if (!rec) {
    return send_error(fd, ErrorCode::UnknownJob,
                      "job id is not (or no longer) registered");
  }
  return write_frame(fd, MessageType::PollResponse,
                     status_from_record(*rec).encode());
}

bool ExperimentServer::handle_cancel(const Fd& fd, WireReader& r) {
  const std::uint64_t id = r.u64();
  QDC_CHECK(r.exhausted(), "CancelRequest: trailing bytes");
  const std::optional<JobState> state = queue_.cancel(id);
  if (!state) {
    return send_error(fd, ErrorCode::UnknownJob,
                      "job id is not (or no longer) registered");
  }
  if (*state != JobState::Cancelled) {
    return send_error(fd, ErrorCode::NotCancellable,
                      std::string("job is ") + job_state_name(*state));
  }
  WireWriter w;
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(*state));
  return write_frame(fd, MessageType::CancelResponse, w.take());
}

bool ExperimentServer::handle_admin(const Fd& fd) {
  return write_frame(fd, MessageType::AdminResponse, stats().encode());
}

bool ExperimentServer::handle_shutdown(const Fd& fd, WireReader& r) {
  const std::uint8_t drain = r.u8();
  QDC_CHECK(r.exhausted(), "ShutdownRequest: trailing bytes");
  WireWriter w;
  w.u8(drain != 0 ? 1 : 0);
  const bool sent =
      write_frame(fd, MessageType::ShutdownResponse, w.take());
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stop_requested_ = true;
    if (drain != 0) drain_on_stop_ = true;
  }
  // Reject new submits right away; the owner thread observes wait()
  // returning and calls stop(), which drains or cancels per the flag.
  queue_.close();
  lifecycle_cv_.notify_all();
  return sent;
}

bool ExperimentServer::send_error(const Fd& fd, ErrorCode code,
                                  const std::string& message) {
  ErrorBody body;
  body.code = code;
  body.message = message;
  return write_frame(fd, MessageType::ErrorResponse, body.encode());
}

void ExperimentServer::record_timing(std::uint64_t wall_us,
                                     std::uint64_t compute_us) {
  std::lock_guard<std::mutex> lock(timing_mutex_);
  timing_.total_wall_us += wall_us;
  timing_.total_compute_us += compute_us;
  if (wall_us > timing_.max_wall_us) timing_.max_wall_us = wall_us;
  if (compute_us > timing_.max_compute_us) timing_.max_compute_us = compute_us;
}

JobStatus ExperimentServer::status_from_record(const JobRecord& rec) {
  JobStatus status;
  status.job_id = rec.id;
  status.state = rec.state;
  status.cached = rec.cached;
  status.error = rec.error;
  status.error_message = rec.error_message;
  status.wall_us = rec.wall_us;
  status.compute_us = rec.compute_us;
  if (rec.result) status.result = *rec.result;
  return status;
}

}  // namespace qdc::service
