#include "service/socket_io.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/expect.hpp"

namespace qdc::service {
namespace {

/// Reads exactly `size` bytes. Returns the byte count actually read:
/// `size` on success, 0 on clean EOF before the first byte, anything
/// else means the stream ended (or errored) mid-read.
std::size_t read_exact(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t got = ::read(fd, out + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    done += static_cast<std::size_t>(got);
  }
  return done;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    ssize_t sent = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(sent);
  }
  return true;
}

sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  QDC_CHECK(path.size() + 1 <= sizeof(addr.sun_path),
            "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  QDC_CHECK(fd.valid(), "socket(AF_UNIX) failed");
  sockaddr_un addr = make_unix_address(path);
  ::unlink(path.c_str());  // replace a stale socket file from a dead server
  int rc = ::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
  QDC_CHECK(rc == 0, "bind(" + path + ") failed: " +
                         std::string(std::strerror(errno)));
  rc = ::listen(fd.get(), backlog);
  QDC_CHECK(rc == 0, "listen(" + path + ") failed: " +
                         std::string(std::strerror(errno)));
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  QDC_CHECK(fd.valid(), "socket(AF_UNIX) failed");
  sockaddr_un addr = make_unix_address(path);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  QDC_CHECK(rc == 0, "connect(" + path + ") failed: " +
                         std::string(std::strerror(errno)));
  return fd;
}

Fd accept_connection(const Fd& listener) {
  for (;;) {
    int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    return Fd();  // listener shut down (EBADF/EINVAL) or fatal
  }
}

void shutdown_socket(const Fd& fd) {
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

ReadFrameResult read_frame(const Fd& fd) {
  ReadFrameResult result;
  std::uint8_t header[kFrameHeaderSize];
  std::size_t got = read_exact(fd.get(), header, kFrameHeaderSize);
  if (got == 0) {
    result.status = ReadStatus::Eof;
    return result;
  }
  if (got < kFrameHeaderSize) {
    result.status = ReadStatus::Malformed;
    result.error = ErrorCode::TruncatedFrame;
    return result;
  }
  ErrorCode code = parse_frame_header(header, &result.header);
  if (code != ErrorCode::None) {
    result.status = ReadStatus::Malformed;
    result.error = code;
    return result;
  }
  result.payload.resize(result.header.payload_size);
  if (result.header.payload_size > 0) {
    got = read_exact(fd.get(), result.payload.data(),
                     result.payload.size());
    if (got < result.payload.size()) {
      result.status = ReadStatus::Malformed;
      result.error = ErrorCode::TruncatedFrame;
      result.payload.clear();
      return result;
    }
  }
  result.status = ReadStatus::Ok;
  return result;
}

bool write_frame(const Fd& fd, MessageType type,
                 const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  return write_all(fd.get(), frame.data(), frame.size());
}

bool write_bytes(const Fd& fd, const std::uint8_t* data, std::size_t size) {
  return write_all(fd.get(), data, size);
}

}  // namespace qdc::service
