#include "service/executor.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "congest/network.hpp"
#include "congest/topology.hpp"
#include "core/lb_topology.hpp"
#include "dist/leader.hpp"
#include "dist/mst.hpp"
#include "dist/tree.hpp"
#include "graph/graph.hpp"
#include "service/wire.hpp"
#include "util/expect.hpp"

namespace qdc::service {
namespace {

std::shared_ptr<const congest::TopologyView> build_view(const JobSpec& spec) {
  const int n = static_cast<int>(spec.nodes);
  switch (spec.topology) {
    case TopologyKind::Path:
      return std::make_shared<congest::PathView>(n);
    case TopologyKind::Cycle:
      return std::make_shared<congest::CycleView>(n);
    case TopologyKind::Tree:
      return std::make_shared<congest::BalancedTreeView>(
          n, static_cast<int>(spec.arity));
    case TopologyKind::Gnm:
      return std::make_shared<congest::GnmView>(
          n, static_cast<int>(spec.edges), spec.topology_seed);
    case TopologyKind::LbNetwork:
      return std::make_shared<core::LbTopologyView>(
          static_cast<int>(spec.gamma), static_cast<int>(spec.length));
  }
  QDC_EXPECT(false, "execute_job: unknown topology kind");
  return nullptr;
}

/// The dist/ drivers read Network::topology(), which implicit views do
/// not provide, so the executor materializes every topology. Spec caps
/// (job_spec.cpp) keep this affordable, and implicit and materialized
/// builds of the same topology produce identical results by the engine's
/// topology-equivalence guarantee (congest/topology.hpp).
std::shared_ptr<const congest::TopologyView> materialize(
    const congest::TopologyView& view) {
  graph::Graph g(view.node_count());
  const int edges = view.edge_count();
  for (int e = 0; e < edges; ++e) {
    const graph::Edge edge = view.edge(e);
    g.add_edge(edge.u, edge.v);
  }
  return std::make_shared<congest::MaterializedView>(std::move(g));
}

/// FNV-1a over a vector of i64, little-endian byte order — the detail
/// fold clients can compare without shipping the whole vector.
std::uint64_t fold_details(const std::vector<std::int64_t>& details) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::int64_t value : details) {
    auto v = static_cast<std::uint64_t>(value);
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (v >> shift) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

struct Outcome {
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t fields = 0;
  std::int64_t value0 = 0;
  std::int64_t value1 = 0;
  std::int64_t value2 = 0;
  std::vector<std::int64_t> details;
};

Outcome run_algorithm(const JobSpec& spec, congest::Network& net) {
  Outcome out;
  switch (spec.algorithm) {
    case AlgorithmKind::Census: {
      // run_census reports the aggregate round count only; messages and
      // fields stay 0 by specification (docs/SERVICE.md).
      dist::CensusResult census = dist::run_census(net);
      out.rounds = static_cast<std::uint32_t>(census.rounds);
      out.value0 = census.leader;
      out.value1 = census.node_count;
      out.value2 = census.edge_count;
      return out;
    }
    case AlgorithmKind::Leader: {
      dist::LeaderResult leader = dist::elect_leader(net);
      out.rounds = static_cast<std::uint32_t>(leader.stats.rounds);
      out.messages = static_cast<std::uint64_t>(leader.stats.messages);
      out.fields = static_cast<std::uint64_t>(leader.stats.fields);
      out.value0 = leader.leader;
      return out;
    }
    case AlgorithmKind::Mst: {
      dist::BfsTreeResult tree = dist::build_bfs_tree(net, 0);
      dist::MstOptions options;
      options.max_rounds = static_cast<int>(spec.max_rounds);
      dist::MstRunResult mst = dist::run_mst(net, tree, options);
      out.rounds = static_cast<std::uint32_t>(tree.stats.rounds +
                                              mst.stats.rounds);
      out.messages = static_cast<std::uint64_t>(tree.stats.messages +
                                                mst.stats.messages);
      out.fields =
          static_cast<std::uint64_t>(tree.stats.fields + mst.stats.fields);
      out.value0 = static_cast<std::int64_t>(mst.tree_edges.size());
      std::vector<std::int64_t> labels = mst.component;
      std::sort(labels.begin(), labels.end());
      labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
      out.value1 = static_cast<std::int64_t>(labels.size());
      out.value2 = std::bit_cast<std::int64_t>(mst.weight);
      out.details = std::move(mst.component);
      return out;
    }
  }
  QDC_EXPECT(false, "execute_job: unknown algorithm kind");
  return out;
}

}  // namespace

std::vector<std::uint8_t> execute_job(const JobSpec& spec) {
  QDC_CHECK(spec.validate().empty(),
            "execute_job: invalid spec: " + spec.validate());
  const std::shared_ptr<const congest::TopologyView> view =
      materialize(*build_view(spec));
  congest::NetworkConfig config;
  config.bandwidth = static_cast<int>(spec.bandwidth);
  config.shared_seed = spec.shared_seed;
  congest::Network net(view, config);

  const Outcome out = run_algorithm(spec, net);

  WireWriter w;
  w.u8(kResultVersion);
  w.u8(static_cast<std::uint8_t>(spec.algorithm));
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(view->node_count()));
  w.u32(static_cast<std::uint32_t>(view->edge_count()));
  w.u32(out.rounds);
  w.u64(out.messages);
  w.u64(out.fields);
  w.i64(out.value0);
  w.i64(out.value1);
  w.i64(out.value2);
  w.u64(fold_details(out.details));
  if (out.details.size() <= kInlineDetailLimit) {
    w.u32(static_cast<std::uint32_t>(out.details.size()));
    for (std::int64_t d : out.details) w.i64(d);
  } else {
    w.u32(0);
  }
  return w.take();
}

ResultSummary decode_result(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  std::uint8_t version = r.u8();
  QDC_CHECK(version == kResultVersion,
            "result payload: unsupported version");
  ResultSummary s;
  std::uint8_t algorithm = r.u8();
  QDC_CHECK(algorithm >= 1 && algorithm <= 3,
            "result payload: unknown algorithm");
  s.algorithm = static_cast<AlgorithmKind>(algorithm);
  r.u16();  // reserved
  s.nodes = r.u32();
  s.edges = r.u32();
  s.rounds = r.u32();
  s.messages = r.u64();
  s.fields = r.u64();
  s.value0 = r.i64();
  s.value1 = r.i64();
  s.value2 = r.i64();
  s.detail_fold = r.u64();
  std::uint32_t count = r.u32();
  s.details.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) s.details.push_back(r.i64());
  QDC_CHECK(r.exhausted(), "result payload: trailing bytes");
  return s;
}

}  // namespace qdc::service
