#include "service/result_cache.hpp"

#include <utility>

#include "util/expect.hpp"

namespace qdc::service {

ResultCache::ResultCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

ResultBytes ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->payload;
}

void ResultCache::insert(std::uint64_t key, ResultBytes payload) {
  QDC_EXPECT(payload != nullptr, "ResultCache: null payload");
  const auto size = static_cast<std::uint64_t>(payload->size());
  std::lock_guard<std::mutex> lock(mutex_);
  if (size > capacity_) {
    ++rejected_;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace = remove + fresh insert, so the entry can never be chosen
    // as its own eviction victim while it is being refreshed.
    bytes_ -= it->second->payload->size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  evict_until_fits_locked(size);
  lru_.push_front(Entry{key, std::move(payload)});
  index_.emplace(key, lru_.begin());
  bytes_ += size;
  ++insertions_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insertions = insertions_;
  s.rejected = rejected_;
  s.bytes = bytes_;
  s.entries = static_cast<std::uint64_t>(index_.size());
  s.capacity_bytes = capacity_;
  return s;
}

void ResultCache::evict_until_fits_locked(std::uint64_t incoming_size) {
  while (!lru_.empty() && bytes_ + incoming_size > capacity_) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace qdc::service
