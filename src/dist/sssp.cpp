#include "dist/sssp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

#include "congest/network.hpp"
#include "dist/mst.hpp"
#include "util/expect.hpp"

namespace qdc::dist {

namespace {

enum SsspTag : std::int64_t {
  kDist = 40,  // {tag, bit_cast<double> distance-of-sender}
};

class BellmanFordProgram : public congest::NodeProgram {
 public:
  explicit BellmanFordProgram(NodeId source) : source_(source) {}

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    bool improved = false;
    if (ctx.round() == 0 && ctx.id() == source_) {
      distance_ = 0.0;
      improved = true;
    }
    for (const Incoming& msg : inbox) {
      const double through = std::bit_cast<double>(msg.data[1]) +
                             ctx.edge_weight(msg.port);
      if (through < distance_) {
        distance_ = through;
        parent_port_ = msg.port;
        improved = true;
      }
    }
    if (improved) {
      ctx.send_all({kDist, std::bit_cast<std::int64_t>(distance_)});
    }
    // Shortest paths have at most n-1 hops: everything has converged by
    // round n-1; halt one round later so final messages drain.
    if (ctx.round() >= ctx.node_count()) {
      ctx.set_output(std::bit_cast<std::int64_t>(distance_));
      ctx.halt();
    }
  }

  double distance() const { return distance_; }
  int parent_port() const { return parent_port_; }

 private:
  NodeId source_;
  double distance_ = graph::kInfiniteDistance;
  int parent_port_ = -1;
};

}  // namespace

SsspResult run_bellman_ford(Network& net, NodeId source) {
  QDC_EXPECT(net.topology().valid_node(source),
             "run_bellman_ford: bad source");
  net.install([source](NodeId, const NodeContext&) {
    return std::make_unique<BellmanFordProgram>(source);
  });
  const auto stats = net.run({.max_rounds = net.node_count() + 2});
  QDC_CHECK(stats.completed, "run_bellman_ford: did not complete");
  SsspResult result;
  result.stats = stats;
  result.distance.resize(static_cast<std::size_t>(net.node_count()));
  result.parent_port.resize(static_cast<std::size_t>(net.node_count()));
  std::set<graph::EdgeId> edges;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    auto* prog = dynamic_cast<BellmanFordProgram*>(net.program(u));
    QDC_EXPECT(prog != nullptr, "run_bellman_ford: foreign program");
    result.distance[static_cast<std::size_t>(u)] = prog->distance();
    result.parent_port[static_cast<std::size_t>(u)] = prog->parent_port();
    if (prog->parent_port() >= 0) {
      edges.insert(net.topology()
                       .neighbors(u)[static_cast<std::size_t>(
                           prog->parent_port())]
                       .edge);
    }
  }
  result.tree_edges.assign(edges.begin(), edges.end());
  return result;
}

double run_st_distance(Network& net, NodeId s, NodeId t) {
  QDC_EXPECT(net.topology().valid_node(t), "run_st_distance: bad t");
  return run_bellman_ford(net, s).distance[static_cast<std::size_t>(t)];
}

LeListVerifyResult verify_least_element_list(
    Network& net, NodeId u, const std::vector<int>& rank,
    const std::vector<graph::LeListEntry>& claimed) {
  QDC_EXPECT(rank.size() == static_cast<std::size_t>(net.node_count()),
             "verify_least_element_list: rank size mismatch");
  LeListVerifyResult result;

  // 1. Distances from u.
  const auto sssp = run_bellman_ford(net, u);
  result.rounds += sssp.stats.rounds;
  result.messages += sssp.stats.messages;

  // 2. Gather (node, distance, rank) triples at u via a BFS tree rooted
  //    there (pipelined upcast, O(D + n) rounds).
  const auto tree = build_bfs_tree(net, u);
  result.rounds += tree.stats.rounds;
  result.messages += tree.stats.messages;
  std::vector<std::vector<Payload>> items(
      static_cast<std::size_t>(net.node_count()));
  for (NodeId v = 0; v < net.node_count(); ++v) {
    items[static_cast<std::size_t>(v)].push_back(
        {v,
         std::bit_cast<std::int64_t>(
             sssp.distance[static_cast<std::size_t>(v)]),
         rank[static_cast<std::size_t>(v)]});
  }
  const auto gathered = run_gather(net, tree, 3, items);
  result.rounds += gathered.stats.rounds;
  result.messages += gathered.stats.messages;

  // 3. u rebuilds the true LE-list locally and compares.
  std::vector<std::tuple<double, int, NodeId>> rows;
  for (const Payload& item : gathered.items) {
    const double d = std::bit_cast<double>(item[1]);
    if (d < graph::kInfiniteDistance) {
      rows.emplace_back(d, static_cast<int>(item[2]),
                        static_cast<NodeId>(item[0]));
    }
  }
  std::sort(rows.begin(), rows.end());
  std::vector<graph::LeListEntry> truth;
  int best_rank = std::numeric_limits<int>::max();
  for (const auto& [d, r, v] : rows) {
    if (r < best_rank) {
      best_rank = r;
      truth.push_back(graph::LeListEntry{v, d});
    }
  }
  result.accepted = truth.size() == claimed.size();
  if (result.accepted) {
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth[i].node != claimed[i].node ||
          std::abs(truth[i].distance - claimed[i].distance) > 1e-9) {
        result.accepted = false;
        break;
      }
    }
  }
  return result;
}

MinCutEstimate estimate_min_cut(Network& net, const BfsTreeResult& tree,
                                int trials_per_level) {
  QDC_EXPECT(trials_per_level >= 1, "estimate_min_cut: bad trial count");
  MinCutEstimate result;
  const auto& topo = net.topology();
  const int levels =
      static_cast<int>(std::ceil(std::log2(std::max(2, topo.edge_count())))) +
      2;
  // Shared-tape coin for (edge, level, trial): both endpoints of an edge
  // would evaluate the same hash, so the sample needs no communication.
  // We evaluate it driver-side with the network's own tape semantics.
  const auto keep = [&](graph::EdgeId e, int level, int trial) {
    const std::uint64_t h =
        std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(e) * 2654435761u ^
                                   (static_cast<std::uint64_t>(level) << 40) ^
                                   (static_cast<std::uint64_t>(trial) << 52) ^
                                   net.shared_seed());
    // Keep with probability 2^-level: need `level` consecutive bits set.
    return level == 0 || (h & ((1ull << level) - 1)) == 0;
  };

  for (int level = 0; level < levels; ++level) {
    int disconnects = 0;
    for (int trial = 0; trial < trials_per_level; ++trial) {
      graph::EdgeSubset sample(topo.edge_count());
      for (graph::EdgeId e = 0; e < topo.edge_count(); ++e) {
        if (keep(e, level, trial)) sample.insert(e);
      }
      net.set_subnetwork(sample);
      const auto comp = run_components(net, tree, true);
      result.rounds += comp.stats.rounds;
      result.messages += comp.stats.messages;
      std::int64_t leaders = 0;
      for (NodeId v = 0; v < net.node_count(); ++v) {
        if (comp.component[static_cast<std::size_t>(v)] == v) ++leaders;
      }
      if (leaders > 1) ++disconnects;
    }
    if (2 * disconnects > trials_per_level) {
      // Majority of samples at probability 2^-level disconnected: the cut
      // is around 2^level (up to the usual O(log n) sampling slack).
      result.threshold_p = std::pow(0.5, level);
      result.estimate = std::pow(2.0, level);
      net.clear_subnetwork();
      return result;
    }
  }
  result.threshold_p = std::pow(0.5, levels);
  result.estimate = std::pow(2.0, levels);
  net.clear_subnetwork();
  return result;
}

}  // namespace qdc::dist
