// Distributed verification of subnetwork properties (Section 2.2 and
// Appendix A.2 of the paper; the problems of Corollary 3.7).
//
// Every verifier is a composition of the connected-components engine
// (src/dist/mst.hpp, run restricted to the input subnetwork M) and O(D)
// tree aggregations - exactly the reduction structure the paper uses in
// Section 9 (e.g. Hamiltonian cycle verification = "all degrees two" +
// connectivity; spanning tree = connectivity + edge count).
//
// The input subnetwork M must be installed on the network with
// Network::set_subnetwork before calling a verifier. Verifiers that modify
// M (e.g. e-cycle containment works on M - e) restore it before returning.
#pragma once

#include "dist/tree.hpp"
#include "graph/graph.hpp"

namespace qdc::dist {

struct VerifyResult {
  bool accepted = false;
  /// Rounds/messages summed over all sub-runs of the verifier (the BFS
  /// tree passed in is amortized across verifications and not included).
  int rounds = 0;
  std::int64_t messages = 0;
};

/// M is connected (every node in one M-component; isolated nodes count as
/// their own components).
VerifyResult verify_connectivity(Network& net, const BfsTreeResult& tree,
                                 const graph::EdgeSubset& m);

/// M is connected and touches every node ("connected spanning subgraph").
VerifyResult verify_spanning_connected_subgraph(Network& net,
                                                const BfsTreeResult& tree,
                                                const graph::EdgeSubset& m);

/// M is a spanning tree of N.
VerifyResult verify_spanning_tree(Network& net, const BfsTreeResult& tree,
                                  const graph::EdgeSubset& m);

/// M is a Hamiltonian cycle of N (Section 9.1's reduction: all degrees
/// two, then connectivity).
VerifyResult verify_hamiltonian_cycle(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m);

/// M is a simple path (all degrees <= 2, exactly two endpoints, acyclic,
/// one nontrivial component).
VerifyResult verify_simple_path(Network& net, const BfsTreeResult& tree,
                                const graph::EdgeSubset& m);

/// M contains at least one cycle.
VerifyResult verify_cycle_containment(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m);

/// M contains a cycle through edge e (e must be in M).
VerifyResult verify_e_cycle_containment(Network& net,
                                        const BfsTreeResult& tree,
                                        const graph::EdgeSubset& m,
                                        graph::EdgeId e);

/// s and t lie in the same M-component.
VerifyResult verify_st_connectivity(Network& net, const BfsTreeResult& tree,
                                    const graph::EdgeSubset& m, NodeId s,
                                    NodeId t);

/// Removing M's edges disconnects N.
VerifyResult verify_cut(Network& net, const BfsTreeResult& tree,
                        const graph::EdgeSubset& m);

/// Removing M's edges separates s from t.
VerifyResult verify_st_cut(Network& net, const BfsTreeResult& tree,
                           const graph::EdgeSubset& m, NodeId s, NodeId t);

/// Edge e lies on every u-v path in M, i.e. e is a u-v cut of M.
VerifyResult verify_edge_on_all_paths(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m, NodeId u,
                                      NodeId v, graph::EdgeId e);

/// M is bipartite, decided through connected components of the bipartite
/// double cover (the cover is simulated by an explicit 2n-node network;
/// each original node hosts its two copies, so the simulation preserves
/// round complexity up to a constant bandwidth factor).
VerifyResult verify_bipartiteness(Network& net, const BfsTreeResult& tree,
                                  const graph::EdgeSubset& m);

}  // namespace qdc::dist
