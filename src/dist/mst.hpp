// Distributed minimum-spanning-forest computation in the CONGEST model.
//
// The algorithm follows the structure of Kutten-Peleg / Garay-Kutten-Peleg
// (the O~(sqrt(n) + D) MST the paper's Figure 3 upper bound refers to):
//
//   Phase 1 (controlled Boruvka): fragments grow by merging along minimum
//   weight outgoing edges (MWOEs), but only fragments of size < s
//   participate as proposers, and merges are star-shaped (coin-flip
//   matching: TAILS fragments propose, HEADS fragments accept), which keeps
//   every fragment tree depth O(s + #iterations * s). With s = sqrt(n) the
//   phase takes O~(sqrt(n)) rounds and leaves <= n/s + o(..) fragments.
//
//   Phase 2 (pipelined Boruvka through the BFS-tree root): each remaining
//   Boruvka iteration ships one MWOE candidate per fragment up the global
//   BFS tree (min-combining at intermediate nodes), the root merges
//   fragments centrally and streams the selected edges and fragment-label
//   remaps back down. Each iteration costs O(D + #fragments) rounds and
//   the number of iterations is O(log n).
//
// The same machinery doubles as:
//   * connected components of the input subnetwork M (unit weights +
//     restriction to M edges) - the engine behind all the verification
//     algorithms of Corollary 3.7;
//   * alpha-approximate MST via weight bucketing (Elkin-style rounding):
//     weights are mapped to bucket indices of width `bucket_width`, so the
//     computed tree is optimal for the rounded weights and at most
//     (1 + bucket_width)-approximate for the true ones; the paper's
//     Figure 3 sweep uses this.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/stats.hpp"
#include "dist/tree.hpp"
#include "graph/graph.hpp"

namespace qdc::dist {

struct MstOptions {
  /// Consider only edges of the input subnetwork M as graph edges (the
  /// global BFS tree still uses the full topology, as the model allows).
  bool restrict_to_subnetwork = false;

  /// Ignore true weights; every edge weighs 1. With this option the result
  /// is a spanning forest of (the eligible part of) the network and the
  /// final fragment labels are exactly the connected components.
  bool unit_weights = false;

  /// When > 0, replace each weight w by the bucket index
  /// floor((w - min_weight) / bucket_width); ties are broken by edge
  /// endpoints, so the result is a Kruskal-by-bucket forest.
  double bucket_width = 0.0;
  double min_weight = 1.0;

  /// Phase-1 target fragment size s. -1 selects ceil(sqrt(n)); values <= 1
  /// skip phase 1 entirely (pure pipelined Boruvka).
  int phase1_target = -1;

  /// Round budget; <= 0 selects a generous default.
  int max_rounds = 0;

  /// Warm start: per-node initial fragment labels (empty = every node its
  /// own fragment). Used by class-sequential algorithms (Elkin-style
  /// approximate MST) that grow one forest across several runs. Only
  /// supported with phase1_target <= 1 (fragment trees are not carried
  /// over).
  std::vector<std::int64_t> initial_component;
};

struct MstRunResult {
  /// Selected forest edges (global edge ids, sorted, deduplicated).
  std::vector<graph::EdgeId> tree_edges;
  /// Final fragment label of every node (equal labels <=> same component).
  std::vector<std::int64_t> component;
  /// Total true weight of tree_edges.
  double weight = 0.0;
  congest::RunStats stats;
};

/// Runs the MST/forest algorithm on `net`, coordinated through `tree`
/// (a global BFS tree previously built on the same network). Requires
/// bandwidth >= 6 fields.
MstRunResult run_mst(Network& net, const BfsTreeResult& tree,
                     const MstOptions& options);

/// Convenience: connected components of the subnetwork M (or of the whole
/// topology when restrict_to_subnetwork is false).
MstRunResult run_components(Network& net, const BfsTreeResult& tree,
                            bool restrict_to_subnetwork = true);

}  // namespace qdc::dist
