#include "dist/leader.hpp"

#include "congest/network.hpp"
#include "util/expect.hpp"

namespace qdc::dist {

namespace {

enum LeaderTag : std::int64_t {
  kMaxId = 50,  // {tag, best_id_seen}
};

class FloodMaxProgram : public congest::NodeProgram {
 public:
  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    if (ctx.round() == 0) {
      best_ = ctx.id();
      ctx.send_all({kMaxId, best_});
      return;
    }
    bool improved = false;
    for (const Incoming& msg : inbox) {
      if (msg.data[1] > best_) {
        best_ = msg.data[1];
        improved = true;
      }
    }
    if (improved) {
      ctx.send_all({kMaxId, best_});
    }
    // Information travels one hop per round: after n rounds the global
    // maximum has reached everyone.
    if (ctx.round() >= ctx.node_count()) {
      ctx.set_output(best_);
      ctx.halt();
    }
  }

  std::int64_t best() const { return best_; }

 private:
  std::int64_t best_ = -1;
};

}  // namespace

LeaderResult elect_leader(Network& net) {
  net.install([](NodeId, const NodeContext&) {
    return std::make_unique<FloodMaxProgram>();
  });
  const auto stats = net.run({.max_rounds = net.node_count() + 2});
  QDC_CHECK(stats.completed, "elect_leader: did not complete");
  LeaderResult result;
  result.stats = stats;
  result.leader = static_cast<NodeId>(net.output(0).value());
  // Sanity: all nodes agree (they must, after n rounds on a connected
  // network).
  for (NodeId u = 0; u < net.node_count(); ++u) {
    QDC_CHECK(net.output(u).value() == result.leader,
              "elect_leader: disagreement (network disconnected?)");
  }
  return result;
}

CensusResult run_census(Network& net) {
  CensusResult result;
  const auto elected = elect_leader(net);
  result.leader = elected.leader;
  result.rounds = elected.stats.rounds;

  const auto tree = build_bfs_tree(net, elected.leader);
  result.rounds += tree.stats.rounds;

  // Sum of 1 per node and of degree per node (each edge counted twice).
  std::vector<Payload> contrib;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    contrib.push_back(
        {1, static_cast<std::int64_t>(net.topology().degree(u))});
  }
  const auto agg =
      run_aggregate(net, tree, {Combiner::kSum, Combiner::kSum}, contrib);
  result.rounds += agg.stats.rounds;
  result.node_count = agg.values[0];
  result.edge_count = agg.values[1] / 2;
  return result;
}

}  // namespace qdc::dist
