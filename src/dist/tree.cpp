#include "dist/tree.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace qdc::dist {

namespace {

// --- BFS tree construction -------------------------------------------------

enum BfsTag : std::int64_t {
  kWave = 1,    // {tag, sender_depth}
  kAccept = 2,  // {tag}
  kReject = 3,  // {tag}
  kDone = 4,    // {tag, subtree_height}
  kFinish = 5,  // {tag, tree_height}
};

class BfsTreeProgram : public congest::NodeProgram {
 public:
  explicit BfsTreeProgram(NodeId root) : root_(root) {}

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    if (ctx.round() == 0 && ctx.id() == root_) {
      adopt(ctx, /*parent_port=*/-1, /*depth=*/0);
    }
    for (const Incoming& msg : inbox) {
      switch (msg.data[0]) {
        case kWave:
          if (depth_ < 0) {
            adopt(ctx, msg.port, static_cast<int>(msg.data[1]) + 1);
          } else {
            ctx.send(msg.port, {kReject});
          }
          break;
        case kAccept:
          children_.push_back(msg.port);
          --pending_replies_;
          break;
        case kReject:
          --pending_replies_;
          break;
        case kDone:
          subtree_height_ = std::max(
              subtree_height_, static_cast<int>(msg.data[1]) + 1);
          ++children_done_;
          break;
        case kFinish:
          tree_height_ = static_cast<int>(msg.data[1]);
          finish(ctx);
          return;
        default:
          QDC_CHECK(false, "BfsTreeProgram: unknown tag");
      }
    }
    maybe_report_done(ctx);
  }

  LocalTree local_tree() const {
    LocalTree t;
    t.is_root = depth_ == 0;
    t.parent_port = parent_port_;
    t.children_ports = children_;
    t.depth = depth_;
    t.height = tree_height_;
    return t;
  }

 private:
  void adopt(NodeContext& ctx, int parent_port, int depth) {
    depth_ = depth;
    parent_port_ = parent_port;
    if (parent_port >= 0) {
      ctx.send(parent_port, {kAccept});
    }
    for (int p = 0; p < ctx.degree(); ++p) {
      if (p == parent_port) continue;
      ctx.send(p, {kWave, depth_});
      ++pending_replies_;
    }
  }

  void maybe_report_done(NodeContext& ctx) {
    if (depth_ < 0 || pending_replies_ > 0 || done_sent_) return;
    if (children_done_ < static_cast<int>(children_.size())) return;
    done_sent_ = true;
    if (depth_ == 0) {
      // Root: the whole tree is built.
      tree_height_ = subtree_height_;
      finish(ctx);
    } else {
      ctx.send(parent_port_, {kDone, subtree_height_});
    }
  }

  void finish(NodeContext& ctx) {
    for (int c : children_) {
      ctx.send(c, {kFinish, tree_height_});
    }
    ctx.set_output(depth_);
    ctx.halt();
  }

  NodeId root_;
  int depth_ = -1;
  int parent_port_ = -1;
  std::vector<int> children_;
  int pending_replies_ = 0;
  int children_done_ = 0;
  int subtree_height_ = 0;
  int tree_height_ = 0;
  bool done_sent_ = false;
};

// --- Aggregation ------------------------------------------------------------

enum AggTag : std::int64_t {
  kUp = 11,    // {tag, v0, v1, ...}
  kDown = 12,  // {tag, v0, v1, ...}
};

std::int64_t combine_one(Combiner c, std::int64_t a, std::int64_t b) {
  switch (c) {
    case Combiner::kSum:
      return a + b;
    case Combiner::kMin:
      return std::min(a, b);
    case Combiner::kMax:
      return std::max(a, b);
    case Combiner::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case Combiner::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
  }
  QDC_CHECK(false, "combine_one: bad combiner");
}

class AggregateProgram : public congest::NodeProgram {
 public:
  AggregateProgram(LocalTree tree, std::vector<Combiner> combiners,
                   Payload contribution)
      : tree_(std::move(tree)),
        combiners_(std::move(combiners)),
        acc_(std::move(contribution)) {}

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    for (const Incoming& msg : inbox) {
      switch (msg.data[0]) {
        case kUp: {
          for (std::size_t i = 0; i < combiners_.size(); ++i) {
            acc_[i] = combine_one(combiners_[i], acc_[i],
                                  msg.data[i + 1]);
          }
          ++children_reported_;
          break;
        }
        case kDown: {
          acc_.assign(msg.data.begin() + 1, msg.data.end());
          publish(ctx);
          return;
        }
        default:
          QDC_CHECK(false, "AggregateProgram: unknown tag");
      }
    }
    if (!up_sent_ &&
        children_reported_ == static_cast<int>(tree_.children_ports.size())) {
      up_sent_ = true;
      if (tree_.is_root) {
        publish(ctx);
      } else {
        Payload msg{kUp};
        msg.insert(msg.end(), acc_.begin(), acc_.end());
        ctx.send(tree_.parent_port, std::move(msg));
      }
    }
  }

  const Payload& result() const { return acc_; }

 private:
  void publish(NodeContext& ctx) {
    Payload msg{kDown};
    msg.insert(msg.end(), acc_.begin(), acc_.end());
    for (int c : tree_.children_ports) {
      ctx.send(c, msg);
    }
    ctx.set_output(acc_.empty() ? 0 : acc_[0]);
    ctx.halt();
  }

  LocalTree tree_;
  std::vector<Combiner> combiners_;
  Payload acc_;
  int children_reported_ = 0;
  bool up_sent_ = false;
};

// --- Broadcast ----------------------------------------------------------------

class BroadcastProgram : public congest::NodeProgram {
 public:
  BroadcastProgram(LocalTree tree, Payload value)
      : tree_(std::move(tree)), value_(std::move(value)) {}

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    if (tree_.is_root && ctx.round() == 0) {
      forward(ctx, value_);
      return;
    }
    for (const Incoming& msg : inbox) {
      Payload v(msg.data.begin() + 1, msg.data.end());
      forward(ctx, v);
      return;
    }
  }

  const Payload& received() const { return received_; }

 private:
  void forward(NodeContext& ctx, const Payload& v) {
    received_ = v;
    Payload msg{kDown};
    msg.insert(msg.end(), v.begin(), v.end());
    for (int c : tree_.children_ports) {
      ctx.send(c, msg);
    }
    ctx.set_output(v.empty() ? 0 : v[0]);
    ctx.halt();
  }

  LocalTree tree_;
  Payload value_;
  Payload received_;
};

// --- Pipelined gather --------------------------------------------------------

enum GatherTag : std::int64_t {
  kItem = 13,       // {tag, f0, f1, ...}
  kGatherDone = 14, // {tag}
};

class GatherProgram : public congest::NodeProgram {
 public:
  GatherProgram(LocalTree tree, int rate, std::vector<Payload> own_items)
      : tree_(std::move(tree)), rate_(rate) {
    // The root's own items are already "collected"; everyone else queues
    // theirs for upstreaming.
    if (tree_.is_root) {
      collected_ = std::move(own_items);
    } else {
      queue_ = std::move(own_items);
    }
  }

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    for (const Incoming& msg : inbox) {
      switch (msg.data[0]) {
        case kItem: {
          Payload item(msg.data.begin() + 1, msg.data.end());
          if (tree_.is_root) {
            collected_.push_back(std::move(item));
          } else {
            queue_.push_back(std::move(item));
          }
          break;
        }
        case kGatherDone:
          ++children_done_;
          break;
        default:
          QDC_CHECK(false, "GatherProgram: unknown tag");
      }
    }
    if (tree_.is_root) {
      if (children_done_ == static_cast<int>(tree_.children_ports.size())) {
        ctx.set_output(static_cast<std::int64_t>(collected_.size()));
        ctx.halt();
      }
      return;
    }
    int sent = 0;
    for (; sent < rate_ && !queue_.empty(); ++sent) {
      Payload msg{kItem};
      msg.insert(msg.end(), queue_.back().begin(), queue_.back().end());
      ctx.send(tree_.parent_port, std::move(msg));
      queue_.pop_back();
    }
    // The done marker waits for an item-free round so the edge budget is
    // never exceeded.
    if (sent == 0 && queue_.empty() &&
        children_done_ == static_cast<int>(tree_.children_ports.size())) {
      ctx.send(tree_.parent_port, {kGatherDone});
      ctx.set_output(0);
      ctx.halt();
    }
  }

  std::vector<Payload> take_collected() { return std::move(collected_); }

 private:
  LocalTree tree_;
  int rate_;
  std::vector<Payload> queue_;
  int children_done_ = 0;
  std::vector<Payload> collected_;
};

}  // namespace

GatherResult run_gather(Network& net, const BfsTreeResult& tree,
                        int item_size,
                        const std::vector<std::vector<Payload>>& items,
                        const congest::RunOptions& base) {
  QDC_EXPECT(static_cast<int>(items.size()) == net.node_count(),
             "run_gather: one item list per node required");
  QDC_EXPECT(item_size >= 1, "run_gather: bad item size");
  QDC_EXPECT(item_size + 1 <= net.config().bandwidth,
             "run_gather: item does not fit the bandwidth");
  const int rate = net.config().bandwidth / (item_size + 1);
  std::int64_t total_items = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    for (const Payload& it : items[static_cast<std::size_t>(u)]) {
      QDC_EXPECT(static_cast<int>(it.size()) == item_size,
                 "run_gather: item size mismatch");
    }
    total_items +=
        static_cast<std::int64_t>(items[static_cast<std::size_t>(u)].size());
  }
  net.install([&](NodeId u, const NodeContext&) {
    return std::make_unique<GatherProgram>(
        tree.local[static_cast<std::size_t>(u)], rate,
        items[static_cast<std::size_t>(u)]);
  });
  congest::RunOptions options = base;
  options.max_rounds =
      static_cast<int>(4 * net.node_count() + 2 * total_items + 20);
  const auto stats = net.run(options);
  QDC_CHECK(stats.completed, "run_gather: did not complete");
  auto* root_prog = dynamic_cast<GatherProgram*>(net.program(tree.root));
  GatherResult result;
  result.items = root_prog->take_collected();
  result.stats = stats;
  return result;
}

BfsTreeResult build_bfs_tree(Network& net, NodeId root,
                             const congest::RunOptions& base) {
  QDC_EXPECT(root >= 0 && root < net.node_count(),
             "build_bfs_tree: bad root");
  net.install([root](NodeId, const NodeContext&) {
    return std::make_unique<BfsTreeProgram>(root);
  });
  congest::RunOptions options = base;
  options.max_rounds = 3 * net.node_count() + 10;
  const auto stats = net.run(options);
  QDC_CHECK(stats.completed,
            "build_bfs_tree: network is disconnected (tree never finished)");
  BfsTreeResult result;
  result.root = root;
  result.stats = stats;
  result.local.resize(static_cast<std::size_t>(net.node_count()));
  for (NodeId u = 0; u < net.node_count(); ++u) {
    auto* prog = dynamic_cast<BfsTreeProgram*>(net.program(u));
    QDC_EXPECT(prog != nullptr, "build_bfs_tree: foreign program installed");
    result.local[static_cast<std::size_t>(u)] = prog->local_tree();
  }
  result.height =
      result.local[static_cast<std::size_t>(root)].height;
  return result;
}

AggregateResult run_aggregate(Network& net, const BfsTreeResult& tree,
                              const std::vector<Combiner>& combiners,
                              const std::vector<Payload>& contributions,
                              const congest::RunOptions& base) {
  QDC_EXPECT(static_cast<int>(contributions.size()) == net.node_count(),
             "run_aggregate: one contribution per node required");
  QDC_EXPECT(static_cast<int>(combiners.size()) + 1 <=
                 net.config().bandwidth,
             "run_aggregate: aggregate vector does not fit the bandwidth");
  for (const Payload& c : contributions) {
    QDC_EXPECT(c.size() == combiners.size(),
               "run_aggregate: contribution size mismatch");
  }
  net.install([&](NodeId u, const NodeContext&) {
    return std::make_unique<AggregateProgram>(
        tree.local[static_cast<std::size_t>(u)], combiners,
        contributions[static_cast<std::size_t>(u)]);
  });
  congest::RunOptions options = base;
  options.max_rounds = 3 * net.node_count() + 10;
  const auto stats = net.run(options);
  QDC_CHECK(stats.completed, "run_aggregate: did not complete");
  auto* root_prog =
      dynamic_cast<AggregateProgram*>(net.program(tree.root));
  AggregateResult result;
  result.values = root_prog->result();
  result.stats = stats;
  return result;
}

BroadcastResult run_broadcast(Network& net, const BfsTreeResult& tree,
                              Payload value,
                              const congest::RunOptions& base) {
  QDC_EXPECT(static_cast<int>(value.size()) + 1 <= net.config().bandwidth,
             "run_broadcast: value does not fit the bandwidth");
  net.install([&](NodeId u, const NodeContext&) {
    return std::make_unique<BroadcastProgram>(
        tree.local[static_cast<std::size_t>(u)], value);
  });
  congest::RunOptions options = base;
  options.max_rounds = 3 * net.node_count() + 10;
  const auto stats = net.run(options);
  QDC_CHECK(stats.completed, "run_broadcast: did not complete");
  BroadcastResult result;
  result.stats = stats;
  result.received.resize(static_cast<std::size_t>(net.node_count()));
  for (NodeId u = 0; u < net.node_count(); ++u) {
    auto* prog = dynamic_cast<BroadcastProgram*>(net.program(u));
    result.received[static_cast<std::size_t>(u)] = prog->received();
  }
  return result;
}

}  // namespace qdc::dist
