#include "dist/mst.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "congest/network.hpp"
#include "util/expect.hpp"

namespace qdc::dist {

namespace {

// Message tags. Field layouts are documented next to each tag.
enum MstTag : std::int64_t {
  kFragEx = 20,    // {tag, frag}
  kMwoeUp = 21,    // {tag, has, w, a, b, target, subtree_height}
  kMwoeDown = 22,  // {tag, flags(bit0 has, bit1 propose), w, a, b, height}
  kProposal = 23,  // {tag, proposer_frag}
  kNewFrag = 24,   // {tag, new_frag}
  kActUp = 26,     // {tag, any_active, any_merged}
  kCtl = 27,       // {tag, code, start_round}
  kP2Up = 28,      // {tag, frag, w, a, b, target}
  kP2UpDone = 29,  // {tag}
  kP2Sel = 30,     // {tag, w, a, b}
  kP2Remap = 31,   // {tag, old, new}
  kP2End = 32,     // {tag, next_start, done}
};

enum CtlCode : std::int64_t { kCtlNextIter = 1, kCtlPhase2 = 2 };

std::int64_t pack(double w) { return std::bit_cast<std::int64_t>(w); }
double unpack(std::int64_t v) { return std::bit_cast<double>(v); }

/// Totally ordered edge key: (weight, min endpoint, max endpoint). Weights
/// may collide; the endpoints make keys unique on simple graphs, which is
/// what guarantees Boruvka acyclicity.
struct EdgeKey {
  double w = 0.0;
  std::int64_t a = -1;
  std::int64_t b = -1;

  bool valid() const { return a >= 0; }

  friend bool operator<(const EdgeKey& x, const EdgeKey& y) {
    if (x.w != y.w) return x.w < y.w;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
  friend bool operator==(const EdgeKey& x, const EdgeKey& y) {
    return x.w == y.w && x.a == y.a && x.b == y.b;
  }
};

struct Candidate {
  EdgeKey key;
  std::int64_t target = -1;  // fragment on the far side
  int port = -1;             // local port (only meaningful at the owner)
  bool valid() const { return key.valid(); }
};

// Phase-1 invariants (see header for the algorithm sketch):
//  * a fragment is ACTIVE while its tree height is < s and it has an
//    outgoing edge; only active fragments propose;
//  * a fragment ACCEPTS proposals only while its height is < 2s; since a
//    proposer's height is < s, no fragment tree ever exceeds height
//    3s + 2, so every per-iteration sub-block fits in O(s) rounds;
//  * merges are star-shaped: TAILS fragments (by a shared coin keyed on
//    (fragment id, iteration)) propose along their MWOE into HEADS
//    fragments, which keep their identity. The proposer side learns the
//    outcome only through kNewFrag (rejections are silent and retried in a
//    later iteration with fresh coins).
class FastMstProgram : public congest::NodeProgram {
 public:
  FastMstProgram(LocalTree global_tree, MstOptions opt, int n)
      : gt_(std::move(global_tree)), opt_(opt), n_(n) {
    s_ = opt_.phase1_target;
    if (s_ < 0) s_ = static_cast<int>(std::ceil(std::sqrt(double(n_))));
    skip_phase1_ = s_ <= 1;
    k1_cap_ = 4 * static_cast<int>(std::ceil(std::log2(std::max(2, n_)))) + 16;
  }

  // --- results (read by the driver after the run) ---
  std::int64_t component() const { return frag_; }
  const std::set<int>& mst_ports() const { return mst_ports_; }

  void on_round(NodeContext& ctx, const std::vector<Incoming>& inbox) override {
    if (!initialized_) initialize(ctx);
    for (const Incoming& msg : inbox) handle(ctx, msg);
    if (stage_ == Stage::kPhase1) {
      phase1_tick(ctx);
    } else {
      phase2_tick(ctx);
    }
  }

 private:
  enum class Stage { kPhase1, kPhase2 };

  void initialize(NodeContext& ctx) {
    initialized_ = true;
    frag_ = opt_.initial_component.empty()
                ? ctx.id()
                : opt_.initial_component[static_cast<std::size_t>(ctx.id())];
    for (int p = 0; p < ctx.degree(); ++p) {
      const bool ok =
          !opt_.restrict_to_subnetwork || ctx.edge_in_subnetwork(p);
      eligible_.push_back(ok);
      double w = opt_.unit_weights ? 1.0 : ctx.edge_weight(p);
      if (opt_.bucket_width > 0.0) {
        w = std::floor((w - opt_.min_weight) / opt_.bucket_width);
      }
      const std::int64_t me = ctx.id();
      const std::int64_t peer = ctx.neighbor(p);
      keys_.push_back(EdgeKey{w, std::min(me, peer), std::max(me, peer)});
      neighbor_frag_.push_back(peer);
    }
    if (skip_phase1_) {
      stage_ = Stage::kPhase2;
      p2_start_ = 0;
    } else {
      begin_phase1_iteration(0, 0);
    }
  }

  // ===========================================================================
  // Phase 1: controlled Boruvka with star merges.
  // ===========================================================================

  // Fragment tree heights are bounded by 3s + 2 (see class comment), and
  // additionally by 2^(i+2) at iteration i: heights start at 0 and a merge
  // at most doubles-plus-2 them (h <- h_heads + h_tails + 2), so early
  // iterations run in short blocks.
  int max_depth() const {
    const int growth =
        iter_ >= 28 ? n_ : (1 << std::min(iter_ + 2, 28));
    return std::min({n_, 3 * s_ + 4, growth});
  }
  int ta() const { return 2 * max_depth() + 6; }  // MWOE + decision flood
  int tb() const { return max_depth() + 8; }      // merge flood

  void begin_phase1_iteration(int iter, int start_round) {
    iter_ = iter;
    iter_start_ = start_round;
    local_cand_ = Candidate{};
    mwoe_acc_ = Candidate{};
    mwoe_height_ = 0;
    mwoe_reports_ = 0;
    mwoe_up_sent_ = false;
    chosen_ = EdgeKey{};
    chosen_has_ = false;
    chosen_propose_ = false;
    height_known_ = false;
    height_ = 0;
    had_candidate_ = false;
    reoriented_ = false;
    was_leader_ = frag_parent_ < 0;
    accepted_any_ = false;
    pending_proposals_.clear();
    pending_merge_children_.clear();
    act_armed_ = false;
    act_sent_ = false;
    act_reports_ = 0;
    act_active_ = false;
    act_merged_ = false;
    snapshot_children_ = frag_children_;
  }

  bool coin_heads(std::int64_t frag, const NodeContext& ctx) const {
    return ctx.shared_bit(frag * 1048576 + iter_ + 1);
  }

  void phase1_tick(NodeContext& ctx) {
    const int off = ctx.round() - iter_start_;
    if (off < 0) return;  // waiting for a scheduled start
    if (off == 0) {
      for (int p = 0; p < ctx.degree(); ++p) {
        if (eligible_[static_cast<std::size_t>(p)]) {
          ctx.send(p, {kFragEx, frag_});
        }
      }
      return;
    }
    if (off == 1) {
      compute_local_candidate(ctx);
      if (local_cand_.valid()) merge_candidate(local_cand_);
    }
    // Fragment MWOE + height convergecast (sub-block A).
    if (off >= 1 && !mwoe_up_sent_ && !reoriented_ &&
        mwoe_reports_ == static_cast<int>(snapshot_children_.size())) {
      mwoe_up_sent_ = true;
      if (frag_parent_ < 0) {
        leader_decide(ctx);
      } else {
        ctx.send(frag_parent_,
                 {kMwoeUp, mwoe_acc_.valid() ? 1 : 0, pack(mwoe_acc_.key.w),
                  mwoe_acc_.key.a, mwoe_acc_.key.b, mwoe_acc_.target,
                  mwoe_height_});
      }
    }
    // Merge processing (start of sub-block B): all proposals and the
    // decision flood have arrived; accept or silently reject.
    if (off == ta() && !reoriented_) {
      process_proposals(ctx);
    }
    // Iteration barrier (sub-block C): report activity up the global tree.
    if (off == ta() + tb()) {
      for (int p : pending_merge_children_) frag_children_.push_back(p);
      pending_merge_children_.clear();
      const bool leader = frag_parent_ < 0 && !reoriented_;
      act_active_ = leader && height_known_ && height_ < s_ && had_candidate_;
      act_merged_ = accepted_any_ || (reoriented_ && was_leader_);
      act_armed_ = true;
    }
    if (act_armed_ && !act_sent_ &&
        act_reports_ == static_cast<int>(gt_.children_ports.size())) {
      act_sent_ = true;
      if (gt_.is_root) {
        merge_free_streak_ = act_merged_ ? 0 : merge_free_streak_ + 1;
        const bool next_iter =
            act_active_ && merge_free_streak_ < 2 && iter_ + 1 < k1_cap_;
        const std::int64_t code = next_iter ? kCtlNextIter : kCtlPhase2;
        const std::int64_t start = ctx.round() + gt_.height + 3;
        for (int c : gt_.children_ports) ctx.send(c, {kCtl, code, start});
        apply_ctl(code, start);
      } else {
        ctx.send(gt_.parent_port,
                 {kActUp, act_active_ ? 1 : 0, act_merged_ ? 1 : 0});
      }
    }
  }

  void compute_local_candidate(const NodeContext& ctx) {
    local_cand_ = Candidate{};
    for (int p = 0; p < ctx.degree(); ++p) {
      if (!eligible_[static_cast<std::size_t>(p)]) continue;
      if (neighbor_frag_[static_cast<std::size_t>(p)] == frag_) continue;
      const EdgeKey& k = keys_[static_cast<std::size_t>(p)];
      if (!local_cand_.valid() || k < local_cand_.key) {
        local_cand_ = Candidate{
            k, neighbor_frag_[static_cast<std::size_t>(p)], p};
      }
    }
  }

  void merge_candidate(const Candidate& c) {
    if (!c.valid()) return;
    if (!mwoe_acc_.valid() || c.key < mwoe_acc_.key) {
      mwoe_acc_ = c;
    }
  }

  void leader_decide(NodeContext& ctx) {
    chosen_has_ = mwoe_acc_.valid();
    had_candidate_ = chosen_has_;
    chosen_ = mwoe_acc_.key;
    height_ = mwoe_height_;
    height_known_ = true;
    const bool active = height_ < s_ && chosen_has_;
    chosen_propose_ = active && !coin_heads(frag_, ctx) &&
                      coin_heads(mwoe_acc_.target, ctx);
    broadcast_decision(ctx);
  }

  void broadcast_decision(NodeContext& ctx) {
    const std::int64_t flags =
        (chosen_has_ ? 1 : 0) | (chosen_propose_ ? 2 : 0);
    for (int c : snapshot_children_) {
      ctx.send(c, {kMwoeDown, flags, pack(chosen_.w), chosen_.a, chosen_.b,
                   height_});
    }
    maybe_send_proposal(ctx);
  }

  void maybe_send_proposal(NodeContext& ctx) {
    if (!chosen_propose_ || !local_cand_.valid()) return;
    if (!(local_cand_.key == chosen_)) return;
    // This node owns the fragment's MWOE: propose across it. The edge is
    // marked as a tree edge only if the far side accepts (kNewFrag).
    ctx.send(local_cand_.port, {kProposal, frag_});
  }

  void process_proposals(NodeContext& ctx) {
    if (pending_proposals_.empty()) return;
    // Accept while our fragment is still shallow enough to keep the depth
    // invariant; otherwise stay silent (the proposer retries later).
    if (!height_known_ || height_ >= 2 * s_) return;
    for (int port : pending_proposals_) {
      accepted_any_ = true;
      mst_ports_.insert(port);
      pending_merge_children_.push_back(port);
      ctx.send(port, {kNewFrag, frag_});
    }
    pending_proposals_.clear();
  }

  void reorient(NodeContext& ctx, int arrival_port, std::int64_t new_frag) {
    reoriented_ = true;
    mst_ports_.insert(arrival_port);
    std::vector<int> old_links = frag_children_;
    if (frag_parent_ >= 0) old_links.push_back(frag_parent_);
    frag_ = new_frag;
    frag_parent_ = arrival_port;
    frag_children_.clear();
    for (int p : old_links) {
      if (p == arrival_port) continue;
      frag_children_.push_back(p);
      ctx.send(p, {kNewFrag, new_frag});
    }
    pending_merge_children_.clear();
    pending_proposals_.clear();
  }

  // ===========================================================================
  // Phase 2: pipelined Boruvka through the global BFS-tree root.
  // ===========================================================================

  void begin_phase2_iteration(int start_round) {
    p2_start_ = start_round;
    p2_items_.clear();
    p2_done_reports_ = 0;
    p2_drain_started_ = false;
    p2_done_sent_ = false;
    p2_exchanged_ = false;
    p2_candidate_done_ = false;
  }

  void phase2_tick(NodeContext& ctx) {
    const int off = ctx.round() - p2_start_;
    if (off < 0) return;
    if (off == 0 && !p2_exchanged_) {
      begin_phase2_iteration(p2_start_);
      p2_exchanged_ = true;
      for (int p = 0; p < ctx.degree(); ++p) {
        if (eligible_[static_cast<std::size_t>(p)]) {
          ctx.send(p, {kFragEx, frag_});
        }
      }
      return;
    }
    if (off == 1 && !p2_candidate_done_) {
      p2_candidate_done_ = true;
      compute_local_candidate(ctx);
      if (local_cand_.valid()) {
        p2_merge_item(frag_, local_cand_.key, local_cand_.target);
      }
    }
    if (off >= 1 && !p2_done_sent_ &&
        p2_done_reports_ == static_cast<int>(gt_.children_ports.size())) {
      if (gt_.is_root) {
        p2_done_sent_ = true;
        root_merge(ctx);
      } else {
        if (!p2_drain_started_) {
          p2_drain_started_ = true;
          p2_queue_.assign(p2_items_.begin(), p2_items_.end());
        }
        if (!p2_queue_.empty()) {
          const auto& [frag, item] = p2_queue_.back();
          ctx.send(gt_.parent_port, {kP2Up, frag, pack(item.key.w),
                                     item.key.a, item.key.b, item.target});
          p2_queue_.pop_back();
        } else {
          p2_done_sent_ = true;
          ctx.send(gt_.parent_port, {kP2UpDone});
        }
      }
    }
    // Root: stream the down queue, one item per round.
    if (gt_.is_root && !p2_down_queue_.empty()) {
      Payload item = p2_down_queue_.front();
      p2_down_queue_.erase(p2_down_queue_.begin());
      for (int c : gt_.children_ports) ctx.send(c, item);
      apply_down_item(ctx, item);
    }
  }

  void p2_merge_item(std::int64_t frag, const EdgeKey& key,
                     std::int64_t target) {
    auto it = p2_items_.find(frag);
    if (it == p2_items_.end() || key < it->second.key) {
      p2_items_[frag] = P2Item{key, target};
    }
  }

  void root_merge(NodeContext& ctx) {
    // Central Boruvka step over the fragment graph.
    std::map<std::int64_t, std::int64_t> parent;
    const std::function<std::int64_t(std::int64_t)> find =
        [&](std::int64_t x) {
          auto it = parent.find(x);
          if (it == parent.end() || it->second == x) return x;
          const std::int64_t r = find(it->second);
          it->second = r;
          return r;
        };
    const auto ensure = [&](std::int64_t x) { parent.emplace(x, x); };
    // Sort by key for determinism.
    std::vector<std::pair<std::int64_t, P2Item>> items(p2_items_.begin(),
                                                       p2_items_.end());
    std::sort(items.begin(), items.end(), [](const auto& x, const auto& y) {
      return x.second.key < y.second.key;
    });
    std::vector<EdgeKey> selected;
    for (const auto& [frag, item] : items) {
      ensure(frag);
      ensure(item.target);
      const std::int64_t rf = find(frag);
      const std::int64_t rt = find(item.target);
      if (rf != rt) {
        // Hook the larger root under the smaller, so find() yields the
        // minimum id of every merged group.
        parent[std::max(rf, rt)] = std::min(rf, rt);
        selected.push_back(item.key);
      }
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> remaps;
    for (const auto& entry : parent) {
      const std::int64_t f = entry.first;
      const std::int64_t r = find(f);
      if (r != f) remaps.emplace_back(f, r);
    }
    p2_down_queue_.clear();
    for (const EdgeKey& k : selected) {
      p2_down_queue_.push_back({kP2Sel, pack(k.w), k.a, k.b});
    }
    for (const auto& [oldf, newf] : remaps) {
      p2_down_queue_.push_back({kP2Remap, oldf, newf});
    }
    const bool done = p2_items_.empty();
    const std::int64_t next_start =
        ctx.round() + static_cast<std::int64_t>(p2_down_queue_.size()) +
        gt_.height + 4;
    p2_down_queue_.push_back({kP2End, next_start, done ? 1 : 0});
  }

  void apply_down_item(NodeContext& ctx, const Payload& item) {
    switch (item[0]) {
      case kP2Sel: {
        const std::int64_t a = item[2];
        const std::int64_t b = item[3];
        if (a == ctx.id() || b == ctx.id()) {
          const int port =
              ctx.port_to(static_cast<NodeId>(a == ctx.id() ? b : a));
          QDC_CHECK(port >= 0, "FastMst: selected edge has no local port");
          mst_ports_.insert(port);
        }
        break;
      }
      case kP2Remap:
        if (frag_ == item[1]) frag_ = item[2];
        break;
      case kP2End:
        if (item[2] != 0) {
          ctx.set_output(frag_);
          ctx.halt();
        } else {
          begin_phase2_iteration(static_cast<int>(item[1]));
        }
        break;
      default:
        QDC_CHECK(false, "FastMst: bad down item");
    }
  }

  // ===========================================================================
  // Message dispatch.
  // ===========================================================================

  void handle(NodeContext& ctx, const Incoming& msg) {
    switch (msg.data[0]) {
      case kFragEx:
        neighbor_frag_[static_cast<std::size_t>(msg.port)] = msg.data[1];
        break;
      case kMwoeUp: {
        if (reoriented_) break;
        if (msg.data[1] != 0) {
          Candidate c;
          c.key = EdgeKey{unpack(msg.data[2]), msg.data[3], msg.data[4]};
          c.target = msg.data[5];
          c.port = -1;
          merge_candidate(c);
        }
        mwoe_height_ =
            std::max(mwoe_height_, static_cast<int>(msg.data[6]) + 1);
        ++mwoe_reports_;
        break;
      }
      case kMwoeDown: {
        chosen_has_ = (msg.data[1] & 1) != 0;
        chosen_propose_ = (msg.data[1] & 2) != 0;
        chosen_ = EdgeKey{unpack(msg.data[2]), msg.data[3], msg.data[4]};
        height_ = static_cast<int>(msg.data[5]);
        height_known_ = true;
        for (int c : snapshot_children_) {
          ctx.send(c, {kMwoeDown, msg.data[1], msg.data[2], msg.data[3],
                       msg.data[4], msg.data[5]});
        }
        maybe_send_proposal(ctx);
        break;
      }
      case kProposal:
        pending_proposals_.push_back(msg.port);
        break;
      case kNewFrag:
        if (msg.data[1] != frag_) {
          reorient(ctx, msg.port, msg.data[1]);
        }
        break;
      case kActUp:
        act_active_ = act_active_ || msg.data[1] != 0;
        act_merged_ = act_merged_ || msg.data[2] != 0;
        ++act_reports_;
        break;
      case kCtl:
        for (int c : gt_.children_ports) {
          ctx.send(c, {kCtl, msg.data[1], msg.data[2]});
        }
        apply_ctl(msg.data[1], msg.data[2]);
        break;
      case kP2Up:
        p2_merge_item(msg.data[1],
                      EdgeKey{unpack(msg.data[2]), msg.data[3], msg.data[4]},
                      msg.data[5]);
        break;
      case kP2UpDone:
        ++p2_done_reports_;
        break;
      case kP2Sel:
      case kP2Remap:
      case kP2End:
        for (int c : gt_.children_ports) ctx.send(c, msg.data);
        apply_down_item(ctx, msg.data);
        break;
      default:
        QDC_CHECK(false, "FastMst: unknown tag");
    }
  }

  void apply_ctl(std::int64_t code, std::int64_t start) {
    if (code == kCtlNextIter) {
      begin_phase1_iteration(iter_ + 1, static_cast<int>(start));
    } else {
      stage_ = Stage::kPhase2;
      begin_phase2_iteration(static_cast<int>(start));
    }
  }

  // --- static configuration ---
  LocalTree gt_;
  MstOptions opt_;
  int n_;
  int s_ = 1;
  bool skip_phase1_ = false;
  int k1_cap_ = 0;

  // --- per-port data ---
  bool initialized_ = false;
  std::vector<bool> eligible_;
  std::vector<EdgeKey> keys_;
  std::vector<std::int64_t> neighbor_frag_;

  // --- fragment state ---
  std::int64_t frag_ = -1;
  int frag_parent_ = -1;
  std::vector<int> frag_children_;
  std::set<int> mst_ports_;

  Stage stage_ = Stage::kPhase1;

  // --- phase-1 per-iteration state ---
  int iter_ = 0;
  int iter_start_ = 0;
  std::vector<int> snapshot_children_;
  Candidate local_cand_;
  Candidate mwoe_acc_;
  int mwoe_height_ = 0;
  int mwoe_reports_ = 0;
  bool mwoe_up_sent_ = false;
  EdgeKey chosen_;
  bool chosen_has_ = false;
  bool chosen_propose_ = false;
  bool height_known_ = false;
  int height_ = 0;
  bool had_candidate_ = false;
  bool reoriented_ = false;
  bool was_leader_ = false;
  bool accepted_any_ = false;
  std::vector<int> pending_proposals_;
  std::vector<int> pending_merge_children_;
  bool act_armed_ = false;
  bool act_sent_ = false;
  int act_reports_ = 0;
  bool act_active_ = false;
  bool act_merged_ = false;
  int merge_free_streak_ = 0;  // root only

  // --- phase-2 state ---
  struct P2Item {
    EdgeKey key;
    std::int64_t target = -1;
  };
  int p2_start_ = 0;
  bool p2_exchanged_ = false;
  bool p2_candidate_done_ = false;
  std::map<std::int64_t, P2Item> p2_items_;
  std::vector<std::pair<std::int64_t, P2Item>> p2_queue_;
  int p2_done_reports_ = 0;
  bool p2_drain_started_ = false;
  bool p2_done_sent_ = false;
  std::vector<Payload> p2_down_queue_;
};

}  // namespace

MstRunResult run_mst(Network& net, const BfsTreeResult& tree,
                     const MstOptions& options) {
  QDC_EXPECT(net.config().bandwidth >= 7,
             "run_mst: requires bandwidth >= 7 fields");
  QDC_EXPECT(options.bucket_width >= 0.0, "run_mst: negative bucket width");
  QDC_EXPECT(options.initial_component.empty() ||
                 (static_cast<int>(options.initial_component.size()) ==
                      net.node_count() &&
                  options.phase1_target <= 1 && options.phase1_target >= 0),
             "run_mst: warm start requires one label per node and "
             "phase1_target in {0, 1}");
  const int n = net.node_count();
  net.install([&](NodeId u, const NodeContext&) {
    return std::make_unique<FastMstProgram>(
        tree.local[static_cast<std::size_t>(u)], options, n);
  });
  int budget = options.max_rounds;
  if (budget <= 0) {
    const int logn = static_cast<int>(std::ceil(std::log2(std::max(2, n))));
    budget = 64 * n * (logn + 2) + 4096;
  }
  const auto stats = net.run({.max_rounds = budget});
  QDC_CHECK(stats.completed, "run_mst: did not complete within the budget");

  MstRunResult result;
  result.stats = stats;
  result.component.resize(static_cast<std::size_t>(n));
  std::set<graph::EdgeId> edges;
  for (NodeId u = 0; u < n; ++u) {
    auto* prog = dynamic_cast<FastMstProgram*>(net.program(u));
    QDC_EXPECT(prog != nullptr, "run_mst: foreign program installed");
    result.component[static_cast<std::size_t>(u)] = prog->component();
    for (int p : prog->mst_ports()) {
      edges.insert(
          net.topology().neighbors(u)[static_cast<std::size_t>(p)].edge);
    }
  }
  result.tree_edges.assign(edges.begin(), edges.end());
  for (graph::EdgeId e : result.tree_edges) {
    result.weight += net.edge_weight(e);
  }
  return result;
}

MstRunResult run_components(Network& net, const BfsTreeResult& tree,
                            bool restrict_to_subnetwork) {
  MstOptions opt;
  opt.restrict_to_subnetwork = restrict_to_subnetwork;
  opt.unit_weights = true;
  // Label merging pipelines extremely well through the root; for component
  // computation the pure phase-2 variant is both simpler and faster at
  // every practical scale (the phase-1 ablation bench quantifies this).
  opt.phase1_target = 1;
  return run_mst(net, tree, opt);
}

}  // namespace qdc::dist
