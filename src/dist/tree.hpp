// Global BFS-tree construction and tree-based aggregation primitives.
//
// Nearly every O~(sqrt(n)+D)-style CONGEST algorithm (Kutten-Peleg MST, the
// DHK+12 verification algorithms the paper builds on) is coordinated through
// a global BFS tree: broadcasts flow down it, convergecasts flow up it, and
// pipelined upcasts/downcasts move item streams through the root. This file
// provides:
//
//  * BfsTreeProgram  - builds the tree with full termination detection
//                      (wave + parent replies + subtree-done convergecast),
//                      measured time O(D);
//  * AggregateProgram - one broadcast + convergecast pass computing a fixed
//                      vector of combined values (sum/min/max/and/or) over
//                      all nodes, measured time O(D).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "congest/stats.hpp"

namespace qdc::dist {

using congest::Incoming;
using congest::Network;
using congest::NodeContext;
using congest::NodeId;
using congest::Payload;

/// Node-local view of a rooted spanning tree: everything a node may
/// legitimately remember about a tree built in an earlier run.
struct LocalTree {
  bool is_root = false;
  int parent_port = -1;            ///< port towards the root (-1 at root)
  std::vector<int> children_ports; ///< ports of children in the tree
  int depth = 0;                   ///< hop distance to the root
  int height = 0;                  ///< height of the whole tree (global
                                   ///< knowledge after the finish broadcast)
};

/// Result of a BFS-tree construction run.
struct BfsTreeResult {
  NodeId root = -1;
  std::vector<LocalTree> local;    ///< indexed by node id
  int height = 0;
  congest::RunStats stats;
};

/// Builds a BFS tree rooted at `root` over the (connected) topology.
/// Throws ModelError if some node is unreachable within the round budget.
/// `base` carries execution options for the underlying run (threads,
/// trace recording, frontier mode); its max_rounds is overridden by the
/// algorithm's own schedule. All tree/aggregation drivers below take the
/// same trailing parameter.
BfsTreeResult build_bfs_tree(Network& net, NodeId root,
                             const congest::RunOptions& base = {});

enum class Combiner : std::int64_t {
  kSum = 0,
  kMin = 1,
  kMax = 2,
  kAnd = 3,  ///< logical AND of {0,1} values
  kOr = 4,   ///< logical OR of {0,1} values
};

/// One aggregation pass: every node contributes a vector of values (one per
/// combiner); after the run every node knows the combined vector.
struct AggregateResult {
  std::vector<std::int64_t> values;
  congest::RunStats stats;
};

/// `contributions[u]` is node u's value vector; all vectors must have the
/// same length as `combiners`, and length + 1 must fit in the bandwidth.
AggregateResult run_aggregate(Network& net, const BfsTreeResult& tree,
                              const std::vector<Combiner>& combiners,
                              const std::vector<Payload>& contributions,
                              const congest::RunOptions& base = {});

/// Broadcast `value` (a short payload) from the tree root to every node;
/// returns per-node received copies (for testing) and stats.
struct BroadcastResult {
  std::vector<Payload> received;
  congest::RunStats stats;
};
BroadcastResult run_broadcast(Network& net, const BfsTreeResult& tree,
                              Payload value,
                              const congest::RunOptions& base = {});

/// Pipelined gather (upcast): every node contributes zero or more
/// fixed-size items; all items are streamed up the tree (store-and-forward,
/// as many per round as the bandwidth allows) and collected at the root.
/// Completes in O(height + total_items / rate) rounds. The items arrive at
/// the root in no particular order.
struct GatherResult {
  std::vector<Payload> items;  ///< all items, as collected at the root
  congest::RunStats stats;
};
GatherResult run_gather(Network& net, const BfsTreeResult& tree,
                        int item_size,
                        const std::vector<std::vector<Payload>>& items,
                        const congest::RunOptions& base = {});

}  // namespace qdc::dist
