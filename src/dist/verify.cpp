#include "dist/verify.hpp"

#include <limits>

#include "congest/stats.hpp"
#include "dist/mst.hpp"
#include "util/expect.hpp"

namespace qdc::dist {

namespace {

void accumulate(VerifyResult& acc, const congest::RunStats& stats) {
  acc.rounds += stats.rounds;
  acc.messages += stats.messages;
}

/// Facts derivable from one components run plus one aggregation pass.
/// All contributions are node-local: a node knows its incident M-edges and
/// its own final component label.
struct ComponentFacts {
  std::int64_t leaders = 0;          // number of M-components
  std::int64_t edges_in_m = 0;       // |E(M)|
  std::int64_t degree_one = 0;       // nodes of M-degree exactly 1
  bool all_deg_le2 = false;
  bool all_deg_ge1 = false;
  bool all_deg_eq2 = false;
  std::int64_t touched_leaders = 0;  // components containing an edge
  MstRunResult components;
};

std::vector<int> m_degrees(const Network& net, const graph::EdgeSubset& m) {
  std::vector<int> deg(static_cast<std::size_t>(net.node_count()), 0);
  for (graph::EdgeId e : m.to_vector()) {
    ++deg[static_cast<std::size_t>(net.topology().edge(e).u)];
    ++deg[static_cast<std::size_t>(net.topology().edge(e).v)];
  }
  return deg;
}

ComponentFacts component_facts(Network& net, const BfsTreeResult& tree,
                               const graph::EdgeSubset& m,
                               VerifyResult& acc) {
  net.set_subnetwork(m);
  ComponentFacts facts;
  facts.components = run_components(net, tree, /*restrict=*/true);
  accumulate(acc, facts.components.stats);

  const auto deg = m_degrees(net, m);
  std::vector<Payload> contrib;
  contrib.reserve(static_cast<std::size_t>(net.node_count()));
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const bool leader =
        facts.components.component[static_cast<std::size_t>(u)] == u;
    const int d = deg[static_cast<std::size_t>(u)];
    contrib.push_back({leader ? 1 : 0, d, d == 1 ? 1 : 0, d <= 2 ? 1 : 0,
                       d >= 1 ? 1 : 0, d == 2 ? 1 : 0,
                       (leader && d >= 1) ? 1 : 0});
  }
  const auto agg = run_aggregate(
      net, tree,
      {Combiner::kSum, Combiner::kSum, Combiner::kSum, Combiner::kAnd,
       Combiner::kAnd, Combiner::kAnd, Combiner::kSum},
      contrib);
  accumulate(acc, agg.stats);
  facts.leaders = agg.values[0];
  facts.edges_in_m = agg.values[1] / 2;
  facts.degree_one = agg.values[2];
  facts.all_deg_le2 = agg.values[3] != 0;
  facts.all_deg_ge1 = agg.values[4] != 0;
  facts.all_deg_eq2 = agg.values[5] != 0;
  facts.touched_leaders = agg.values[6];
  return facts;
}

graph::EdgeSubset complement_of(const Network& net,
                                const graph::EdgeSubset& m) {
  graph::EdgeSubset c = graph::EdgeSubset::all(net.topology().edge_count());
  for (graph::EdgeId e : m.to_vector()) c.erase(e);
  return c;
}

/// One aggregation comparing the component labels of two nodes: returns
/// true iff x and y carry the same label.
bool labels_equal(Network& net, const BfsTreeResult& tree,
                  const MstRunResult& comp, NodeId x, NodeId y,
                  VerifyResult& acc) {
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  std::vector<Payload> contrib(static_cast<std::size_t>(net.node_count()),
                               Payload{kHi, kLo});
  contrib[static_cast<std::size_t>(x)] = {
      comp.component[static_cast<std::size_t>(x)],
      comp.component[static_cast<std::size_t>(x)]};
  contrib[static_cast<std::size_t>(y)] = {
      comp.component[static_cast<std::size_t>(y)],
      comp.component[static_cast<std::size_t>(y)]};
  const auto agg = run_aggregate(net, tree, {Combiner::kMin, Combiner::kMax},
                                 contrib);
  accumulate(acc, agg.stats);
  return agg.values[0] == agg.values[1];
}

}  // namespace

VerifyResult verify_connectivity(Network& net, const BfsTreeResult& tree,
                                 const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted = facts.leaders == 1;
  return result;
}

VerifyResult verify_spanning_connected_subgraph(Network& net,
                                                const BfsTreeResult& tree,
                                                const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted =
      facts.leaders == 1 && (net.node_count() == 1 || facts.all_deg_ge1);
  return result;
}

VerifyResult verify_spanning_tree(Network& net, const BfsTreeResult& tree,
                                  const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted =
      facts.leaders == 1 && facts.edges_in_m == net.node_count() - 1;
  return result;
}

VerifyResult verify_hamiltonian_cycle(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted =
      net.node_count() >= 3 && facts.all_deg_eq2 && facts.leaders == 1;
  return result;
}

VerifyResult verify_simple_path(Network& net, const BfsTreeResult& tree,
                                const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  const std::int64_t touched =
      net.node_count() - (facts.leaders - facts.touched_leaders);
  const bool acyclic = facts.edges_in_m == touched - facts.touched_leaders;
  result.accepted = facts.all_deg_le2 && facts.degree_one == 2 && acyclic &&
                    facts.touched_leaders == 1;
  return result;
}

VerifyResult verify_cycle_containment(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted = facts.edges_in_m > net.node_count() - facts.leaders;
  return result;
}

VerifyResult verify_e_cycle_containment(Network& net,
                                        const BfsTreeResult& tree,
                                        const graph::EdgeSubset& m,
                                        graph::EdgeId e) {
  QDC_EXPECT(m.contains(e), "verify_e_cycle_containment: e not in M");
  VerifyResult result;
  graph::EdgeSubset without = m;
  without.erase(e);
  const auto facts = component_facts(net, tree, without, result);
  const auto& edge = net.topology().edge(e);
  result.accepted =
      labels_equal(net, tree, facts.components, edge.u, edge.v, result);
  net.set_subnetwork(m);
  return result;
}

VerifyResult verify_st_connectivity(Network& net, const BfsTreeResult& tree,
                                    const graph::EdgeSubset& m, NodeId s,
                                    NodeId t) {
  QDC_EXPECT(s >= 0 && s < net.node_count() && t >= 0 && t < net.node_count(),
             "verify_st_connectivity: s/t out of range");
  VerifyResult result;
  const auto facts = component_facts(net, tree, m, result);
  result.accepted = labels_equal(net, tree, facts.components, s, t, result);
  net.set_subnetwork(m);
  return result;
}

VerifyResult verify_cut(Network& net, const BfsTreeResult& tree,
                        const graph::EdgeSubset& m) {
  VerifyResult result;
  const auto facts = component_facts(net, tree, complement_of(net, m), result);
  result.accepted = facts.leaders > 1;
  net.set_subnetwork(m);
  return result;
}

VerifyResult verify_st_cut(Network& net, const BfsTreeResult& tree,
                           const graph::EdgeSubset& m, NodeId s, NodeId t) {
  QDC_EXPECT(s >= 0 && s < net.node_count() && t >= 0 && t < net.node_count(),
             "verify_st_cut: s/t out of range");
  VerifyResult result;
  const auto facts = component_facts(net, tree, complement_of(net, m), result);
  result.accepted =
      !labels_equal(net, tree, facts.components, s, t, result);
  net.set_subnetwork(m);
  return result;
}

VerifyResult verify_edge_on_all_paths(Network& net, const BfsTreeResult& tree,
                                      const graph::EdgeSubset& m, NodeId u,
                                      NodeId v, graph::EdgeId e) {
  QDC_EXPECT(m.contains(e), "verify_edge_on_all_paths: e not in M");
  QDC_EXPECT(u >= 0 && u < net.node_count() && v >= 0 && v < net.node_count(),
             "verify_edge_on_all_paths: u/v out of range");
  VerifyResult result;
  graph::EdgeSubset without = m;
  without.erase(e);
  const auto facts = component_facts(net, tree, without, result);
  result.accepted = !labels_equal(net, tree, facts.components, u, v, result);
  net.set_subnetwork(m);
  return result;
}

VerifyResult verify_bipartiteness(Network& net, const BfsTreeResult& tree,
                                  const graph::EdgeSubset& m) {
  // Bipartite double cover: copies u and u+n; every original edge (u, v)
  // becomes the pair (u, v+n), (u+n, v). One extra cross edge (0, n) keeps
  // the cover network connected regardless of N's bipartiteness; it is not
  // part of the covered subnetwork. Each original node simulates its two
  // copies, so running on the explicit 2n-node network preserves the round
  // complexity (messages for both copies share the physical edge, a
  // constant bandwidth factor).
  const int n = net.node_count();
  const auto& topo = net.topology();
  graph::Graph cover(2 * n);
  graph::EdgeSubset cover_m(2 * topo.edge_count() + 1);
  for (graph::EdgeId e = 0; e < topo.edge_count(); ++e) {
    const auto& edge = topo.edge(e);
    const graph::EdgeId c1 = cover.add_edge(edge.u, edge.v + n);
    const graph::EdgeId c2 = cover.add_edge(edge.u + n, edge.v);
    if (m.contains(e)) {
      cover_m.insert(c1);
      cover_m.insert(c2);
    }
  }
  cover.add_edge(0, n);  // connectivity helper, never in cover_m

  congest::Network cover_net(cover, net.config());
  VerifyResult result;
  const auto cover_tree = build_bfs_tree(cover_net, 0);
  accumulate(result, cover_tree.stats);
  cover_net.set_subnetwork(cover_m);
  const auto comp = run_components(cover_net, cover_tree, true);
  accumulate(result, comp.stats);

  // Copy-pair comparison is local to each simulated node; the final AND is
  // one ordinary aggregation on the original network.
  std::vector<Payload> contrib;
  for (NodeId u = 0; u < n; ++u) {
    // u's M-component is bipartite iff u's two copies land in different
    // cover components (isolated nodes trivially satisfy this).
    const bool split = comp.component[static_cast<std::size_t>(u)] !=
                       comp.component[static_cast<std::size_t>(u + n)];
    contrib.push_back({split ? 1 : 0});
  }
  const auto agg = run_aggregate(net, tree, {Combiner::kAnd}, contrib);
  accumulate(result, agg.stats);
  result.accepted = agg.values[0] != 0;
  return result;
}

}  // namespace qdc::dist
