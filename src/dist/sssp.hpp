// Distributed single-source shortest paths (Bellman-Ford) and the
// optimization/verification problems built on it (Appendix A.2/A.3:
// s-source distance, shortest-path tree, shortest s-t path, least-element
// lists).
//
// Distributed Bellman-Ford runs in Theta(n) rounds in the worst case; it is
// the classical exact baseline the paper's discussion of shortest-path
// upper bounds starts from (Section 3.2 cites the newer O~(sqrt(n) D^1/4)
// approximations, whose shape bench E10 addresses through the bound
// calculators instead).
#pragma once

#include "congest/stats.hpp"
#include "dist/tree.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"

namespace qdc::dist {

struct SsspResult {
  std::vector<double> distance;        ///< per node; +inf if unreachable
  std::vector<int> parent_port;        ///< port towards the source; -1 at
                                       ///< the source / unreachable nodes
  std::vector<graph::EdgeId> tree_edges;  ///< shortest-path tree edges
  congest::RunStats stats;
};

/// Bellman-Ford from `source` over the full topology with true edge
/// weights. Runs for exactly n rounds (the classical bound).
SsspResult run_bellman_ford(Network& net, NodeId source);

/// Weighted s-t distance (read off t after an SSSP run).
double run_st_distance(Network& net, NodeId s, NodeId t);

/// Verifies a least-element list (Appendix A.2): node u holds a claimed
/// list S; the network computes distances from u (Bellman-Ford) and gathers
/// (node, distance, rank) triples at u through a BFS tree rooted at u,
/// where u checks S locally.
struct LeListVerifyResult {
  bool accepted = false;
  int rounds = 0;
  std::int64_t messages = 0;
};
LeListVerifyResult verify_least_element_list(
    Network& net, NodeId u, const std::vector<int>& rank,
    const std::vector<graph::LeListEntry>& claimed);

/// Sampling-based estimate of the (unweighted) edge connectivity: for
/// p = 1, 1/2, 1/4, ... every edge is kept with probability p using the
/// shared random tape (both endpoints agree on the coin without
/// communication); the estimate is c / p* at the first p* whose sampled
/// subgraph disconnects. This is a Karger-style O(log n)-factor estimator
/// built entirely from the components engine.
struct MinCutEstimate {
  double estimate = 0.0;
  double threshold_p = 0.0;  ///< first sampling probability that disconnected
  int rounds = 0;
  std::int64_t messages = 0;
};
MinCutEstimate estimate_min_cut(Network& net, const BfsTreeResult& tree,
                                int trials_per_level = 3);

}  // namespace qdc::dist
