// Leader election and node counting - the "global problems" the paper's
// introduction lists as requiring Omega(D) rounds.
//
// Flood-max election: every node floods the maximum id it has seen; after
// the flood quiesces the maximum-id node is the unique leader. Termination
// uses the standard synchronous argument: ids propagate one hop per round,
// so after n rounds every node holds the global maximum (nodes know n).
// The follow-up count runs one BFS + aggregation from the leader (O(D)).
#pragma once

#include "congest/stats.hpp"
#include "dist/tree.hpp"

namespace qdc::dist {

struct LeaderResult {
  NodeId leader = -1;
  congest::RunStats stats;
};

/// Elects the maximum-id node. O(n) rounds (flood-max with the classical
/// synchronous termination bound).
LeaderResult elect_leader(Network& net);

struct CensusResult {
  NodeId leader = -1;
  std::int64_t node_count = 0;
  std::int64_t edge_count = 0;
  int rounds = 0;  ///< total across election, tree building and counting
};

/// Leader election followed by a BFS-tree census: every node learns n and
/// |E| (each edge counted once).
CensusResult run_census(Network& net);

}  // namespace qdc::dist
