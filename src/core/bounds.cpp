#include "core/bounds.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace qdc::core {

namespace {
double log2n(int n) { return std::log2(std::max(2.0, double(n))); }
}  // namespace

double fields_to_bits(int fields, int n) {
  QDC_EXPECT(fields >= 1, "fields_to_bits: bad field count");
  return fields * std::ceil(log2n(n));
}

double verification_lower_bound(int n, double b_bits) {
  QDC_EXPECT(n >= 2 && b_bits >= 1.0, "verification_lower_bound: bad args");
  return std::sqrt(double(n) / (b_bits * log2n(n)));
}

double optimization_lower_bound(int n, double b_bits, double aspect_ratio,
                                double alpha) {
  QDC_EXPECT(alpha >= 1.0 && aspect_ratio >= 1.0,
             "optimization_lower_bound: bad args");
  const double branch = std::min(aspect_ratio / alpha, std::sqrt(double(n)));
  return branch / std::sqrt(b_bits * log2n(n));
}

double mst_upper_envelope(int n, double aspect_ratio, double alpha,
                          int diameter) {
  const double branch = std::min(aspect_ratio / alpha, std::sqrt(double(n)));
  return branch + diameter;
}

double figure3_crossover_aspect(int n, double alpha) {
  return alpha * std::sqrt(double(n));
}

SimulationParameters theorem35_parameters(int n, double b_bits) {
  QDC_EXPECT(n >= 4, "theorem35_parameters: n too small");
  SimulationParameters p;
  p.length = std::max(
      3, static_cast<int>(std::floor(std::sqrt(n / (b_bits * log2n(n))))));
  p.gamma = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(n * b_bits * log2n(n)))));
  return p;
}

double disjointness_classical_rounds(int b, double b_bits, int diameter) {
  QDC_EXPECT(b >= 1 && b_bits >= 1.0 && diameter >= 1,
             "disjointness_classical_rounds: bad args");
  return std::ceil(double(b) / b_bits) + diameter;
}

double disjointness_quantum_rounds(int b, int diameter) {
  QDC_EXPECT(b >= 1 && diameter >= 1,
             "disjointness_quantum_rounds: bad args");
  // pi/4 sqrt(b) Grover iterations, each a 2D-round oracle round trip,
  // plus D rounds to announce.
  return std::ceil(0.7853981633974483 * std::sqrt(double(b))) * 2.0 *
             diameter +
         diameter;
}

double disjointness_crossover_bits(double b_bits, int diameter) {
  // b / B = (pi/4) sqrt(b) 2 D  =>  b = ((pi/2) B D)^2.
  const double c = 1.5707963267948966 * b_bits * diameter;
  return c * c;
}

}  // namespace qdc::core
