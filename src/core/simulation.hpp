// The Quantum Simulation Theorem harness (Theorem 3.5, Section 8,
// Appendix D), executably.
//
// Any distributed algorithm run on N(Gamma, L) with tracing enabled can be
// re-accounted as a three-party (Carol / David / Server) execution: at time
// t the parties own the node sets S_t^C / S_t^D / S_t^S of Equations
// (36)-(38), and a message sent at round t from a node of owner P to a node
// whose owner at t+1 is Q != P must be handed over. Handovers FROM the
// server are free (Definition 3.1); handovers from Carol or David are
// charged. The proof's case analysis shows only highway-to-highway edges
// ever produce charges, at most 6 k B fields per round - the harness
// verifies both facts on the actual message trace and reports the totals,
// which is exactly the O(B log L) per-round cost the theorem converts into
// distributed lower bounds.
#pragma once

#include "congest/network.hpp"
#include "core/lb_network.hpp"

namespace qdc::core {

struct SimulationAccounting {
  int rounds = 0;
  std::int64_t carol_fields = 0;   ///< charged fields sent by Carol
  std::int64_t david_fields = 0;   ///< charged fields sent by David
  std::int64_t server_fields = 0;  ///< free fields handed over by the server
  std::int64_t max_charged_per_round = 0;
  bool only_highway_edges_charged = true;
  std::int64_t per_round_bound = 0;  ///< 6 k B (Theorem 3.5's constant)
  std::int64_t total_charged() const { return carol_fields + david_fields; }
};

/// Re-accounts the traced execution of `net` (which must have been built on
/// `lbn.topology()` with record_trace enabled, and run for at most
/// lbn.max_simulated_rounds() rounds) as the three-party simulation.
SimulationAccounting account_three_party_cost(const LbNetwork& lbn,
                                              const congest::Network& net);

}  // namespace qdc::core
