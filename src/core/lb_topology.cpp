#include "core/lb_topology.hpp"

#include <limits>

#include "util/expect.hpp"

namespace qdc::core {

namespace {

/// Smallest 2^k + 1 that is >= length, with k >= 1 (LbNetwork's rounding).
int round_up_length(int length) {
  int k = 1;
  while ((1 << k) + 1 < length) ++k;
  return (1 << k) + 1;
}

}  // namespace

LbTopologyView::LbTopologyView(int gamma, int length) : gamma_(gamma) {
  QDC_EXPECT(gamma >= 1, "LbTopologyView: need at least one path");
  QDC_EXPECT(length >= 3, "LbTopologyView: length must be >= 3");
  length_ = round_up_length(length);
  highways_ = 0;
  while ((1 << (highways_ + 1)) <= length_ - 1) ++highways_;

  const int k = highways_;
  count_.assign(static_cast<std::size_t>(k) + 1, 0);
  node_base_.assign(static_cast<std::size_t>(k) + 1, 0);
  intra_base_.assign(static_cast<std::size_t>(k) + 1, 0);
  col_base_.assign(static_cast<std::size_t>(k) + 2, 0);

  std::int64_t nodes = static_cast<std::int64_t>(gamma_) * length_;
  for (int lvl = 1; lvl <= k; ++lvl) {
    count_[static_cast<std::size_t>(lvl)] = (length_ - 1) / (1 << lvl) + 1;
    node_base_[static_cast<std::size_t>(lvl)] = static_cast<int>(nodes);
    nodes += count_[static_cast<std::size_t>(lvl)];
  }

  std::int64_t edges = static_cast<std::int64_t>(gamma_) * (length_ - 1);
  for (int lvl = 1; lvl <= k; ++lvl) {
    intra_base_[static_cast<std::size_t>(lvl)] = static_cast<int>(edges);
    edges += count_[static_cast<std::size_t>(lvl)] - 1;
  }
  for (int lvl = 1; lvl <= k; ++lvl) {
    col_base_[static_cast<std::size_t>(lvl)] = static_cast<int>(edges);
    edges += lvl == 1 ? static_cast<std::int64_t>(count_[1]) * gamma_
                      : count_[static_cast<std::size_t>(lvl)];
  }
  col_base_[static_cast<std::size_t>(k) + 1] = static_cast<int>(edges);
  const std::int64_t lines = line_count();
  const std::int64_t clique_edges = lines * (lines - 1) / 2;
  clique_base_[0] = static_cast<int>(edges);
  clique_base_[1] = static_cast<int>(edges + clique_edges);
  edges += 2 * clique_edges;

  QDC_EXPECT(nodes <= std::numeric_limits<int>::max() &&
                 2 * edges <= std::numeric_limits<int>::max(),
             "LbTopologyView: N(Gamma, L) too large for int node/edge ids");
  nodes_ = static_cast<int>(nodes);
  edges_ = static_cast<int>(edges);
}

graph::NodeId LbTopologyView::path_node(int i, int j) const {
  QDC_EXPECT(i >= 0 && i < gamma_ && j >= 1 && j <= length_,
             "LbTopologyView::path_node: out of range");
  return i * length_ + j - 1;
}

graph::NodeId LbTopologyView::highway_node_at(int level, int m) const {
  QDC_EXPECT(level >= 1 && level <= highways_ && m >= 0 &&
                 m < count_[static_cast<std::size_t>(level)],
             "LbTopologyView::highway_node_at: out of range");
  return node_base_[static_cast<std::size_t>(level)] + m;
}

int LbTopologyView::degree(graph::NodeId u) const {
  expect_valid_node(u);
  const int endpoints = line_count() - 1;  // clique partners per member
  if (u < gamma_ * length_) {
    const int j = u % length_ + 1;
    return (j > 1 ? 1 : 0) + (j < length_ ? 1 : 0) +
           ((j - 1) % 2 == 0 ? 1 : 0) +
           (j == 1 || j == length_ ? endpoints : 0);
  }
  int lvl = 1;
  while (lvl < highways_ &&
         u >= node_base_[static_cast<std::size_t>(lvl) + 1]) {
    ++lvl;
  }
  const int m = u - node_base_[static_cast<std::size_t>(lvl)];
  const int c = count_[static_cast<std::size_t>(lvl)];
  return (m > 0 ? 1 : 0) + (m < c - 1 ? 1 : 0) + (lvl == 1 ? gamma_ : 1) +
         (lvl < highways_ && m % 2 == 0 ? 1 : 0) +
         (m == 0 || m == c - 1 ? endpoints : 0);
}

graph::NodeId LbTopologyView::clique_member(bool right, int l) const {
  if (l < gamma_) {
    return right ? l * length_ + length_ - 1 : l * length_;
  }
  const int lvl = l - gamma_ + 1;
  return node_base_[static_cast<std::size_t>(lvl)] +
         (right ? count_[static_cast<std::size_t>(lvl)] - 1 : 0);
}

int LbTopologyView::clique_rank(int a, int b) const {
  const int p = line_count();
  return a * (p - 1) - a * (a - 1) / 2 + (b - a - 1);
}

void LbTopologyView::port_entry(graph::NodeId u, int port,
                                graph::EdgeId* edge,
                                graph::NodeId* peer) const {
  expect_valid_port(u, port);
  // Clique ports of member `a`: partners x < a first (pairs (x, a)), then
  // partners b > a — lexicographic pair order, hence increasing edge id.
  const auto clique_port = [&](bool right, int a, int t) {
    if (t < a) {
      *edge = clique_base_[right ? 1 : 0] + clique_rank(t, a);
      *peer = clique_member(right, t);
    } else {
      *edge = clique_base_[right ? 1 : 0] + clique_rank(a, t + 1);
      *peer = clique_member(right, t + 1);
    }
  };
  int p = port;
  if (u < gamma_ * length_) {
    const int i = u / length_;
    const int j = u % length_ + 1;
    if (j > 1) {
      if (p == 0) {
        *edge = i * (length_ - 1) + (j - 2);
        *peer = u - 1;
        return;
      }
      --p;
    }
    if (j < length_) {
      if (p == 0) {
        *edge = i * (length_ - 1) + (j - 1);
        *peer = u + 1;
        return;
      }
      --p;
    }
    if ((j - 1) % 2 == 0) {  // a level-1 highway node sits in this column
      if (p == 0) {
        const int m = (j - 1) / 2;
        *edge = col_base_[1] + m * gamma_ + i;
        *peer = node_base_[1] + m;
        return;
      }
      --p;
    }
    clique_port(j == length_, i, p);
    return;
  }
  int lvl = 1;
  while (lvl < highways_ &&
         u >= node_base_[static_cast<std::size_t>(lvl) + 1]) {
    ++lvl;
  }
  const int m = u - node_base_[static_cast<std::size_t>(lvl)];
  const int c = count_[static_cast<std::size_t>(lvl)];
  if (m > 0) {
    if (p == 0) {
      *edge = intra_base_[static_cast<std::size_t>(lvl)] + m - 1;
      *peer = u - 1;
      return;
    }
    --p;
  }
  if (m < c - 1) {
    if (p == 0) {
      *edge = intra_base_[static_cast<std::size_t>(lvl)] + m;
      *peer = u + 1;
      return;
    }
    --p;
  }
  if (lvl == 1) {  // down links to every path in this column
    if (p < gamma_) {
      *edge = col_base_[1] + m * gamma_ + p;
      *peer = p * length_ + 2 * m;
      return;
    }
    p -= gamma_;
  } else {  // one down link to level lvl-1 in this column
    if (p == 0) {
      *edge = col_base_[static_cast<std::size_t>(lvl)] + m;
      *peer = node_base_[static_cast<std::size_t>(lvl) - 1] + 2 * m;
      return;
    }
    --p;
  }
  if (lvl < highways_ && m % 2 == 0) {  // up link from level lvl+1
    if (p == 0) {
      *edge = col_base_[static_cast<std::size_t>(lvl) + 1] + m / 2;
      *peer = node_base_[static_cast<std::size_t>(lvl) + 1] + m / 2;
      return;
    }
    --p;
  }
  clique_port(m == c - 1, gamma_ + lvl - 1, p);
}

graph::NodeId LbTopologyView::neighbor(graph::NodeId u, int port) const {
  graph::EdgeId e = 0;
  graph::NodeId peer = 0;
  port_entry(u, port, &e, &peer);
  return peer;
}

graph::EdgeId LbTopologyView::edge_at(graph::NodeId u, int port) const {
  graph::EdgeId e = 0;
  graph::NodeId peer = 0;
  port_entry(u, port, &e, &peer);
  return e;
}

graph::Edge LbTopologyView::edge(graph::EdgeId e) const {
  expect_valid_edge(e);
  if (e < intra_base_[1]) {  // path edges
    const int i = e / (length_ - 1);
    const int r = e % (length_ - 1);
    return graph::Edge{i * length_ + r, i * length_ + r + 1};
  }
  if (e < col_base_[1]) {  // intra-highway edges
    int lvl = 1;
    while (lvl < highways_ &&
           e >= intra_base_[static_cast<std::size_t>(lvl) + 1]) {
      ++lvl;
    }
    const int m = e - intra_base_[static_cast<std::size_t>(lvl)];
    return graph::Edge{node_base_[static_cast<std::size_t>(lvl)] + m,
                       node_base_[static_cast<std::size_t>(lvl)] + m + 1};
  }
  if (e < clique_base_[0]) {  // column links
    int lvl = 1;
    while (lvl < highways_ &&
           e >= col_base_[static_cast<std::size_t>(lvl) + 1]) {
      ++lvl;
    }
    const int t = e - col_base_[static_cast<std::size_t>(lvl)];
    if (lvl == 1) {
      return graph::Edge{node_base_[1] + t / gamma_,
                         (t % gamma_) * length_ + 2 * (t / gamma_)};
    }
    return graph::Edge{node_base_[static_cast<std::size_t>(lvl)] + t,
                       node_base_[static_cast<std::size_t>(lvl) - 1] + 2 * t};
  }
  // End-column cliques: invert the lexicographic pair rank by binary
  // search over the row base a * (p-1) - a*(a-1)/2.
  const bool right = e >= clique_base_[1];
  const int r = e - clique_base_[right ? 1 : 0];
  int lo = 0;
  int hi = line_count() - 2;  // rows 0 .. p-2, row a = pairs (a, *)
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (clique_rank(mid, mid + 1) <= r) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const int a = lo;
  const int b = a + 1 + (r - clique_rank(a, a + 1));
  return graph::Edge{clique_member(right, a), clique_member(right, b)};
}

}  // namespace qdc::core
