#include "core/simulation.hpp"

#include <algorithm>

#include "congest/stats.hpp"
#include "util/expect.hpp"

namespace qdc::core {

SimulationAccounting account_three_party_cost(const LbNetwork& lbn,
                                              const congest::Network& net) {
  QDC_EXPECT(net.topology().node_count() == lbn.topology().node_count() &&
                 net.topology().edge_count() == lbn.topology().edge_count(),
             "account_three_party_cost: network does not match N(Gamma, L)");
  QDC_EXPECT(net.trace_recorded(),
             "account_three_party_cost: run the network with record_trace");
  const auto& trace = net.trace();
  QDC_CHECK(static_cast<int>(trace.size()) <= lbn.max_simulated_rounds(),
            "account_three_party_cost: the algorithm ran longer than "
            "L/2 - 2 rounds; enlarge L (Theorem 3.5's precondition)");

  SimulationAccounting acc;
  acc.rounds = static_cast<int>(trace.size());
  acc.per_round_bound = std::int64_t{6} * lbn.highway_count() *
                        net.config().bandwidth;
  for (int t = 0; t < acc.rounds; ++t) {
    std::int64_t charged_this_round = 0;
    for (const congest::TracedMessage& msg :
         trace[static_cast<std::size_t>(t)]) {
      const Owner sender = lbn.owner(msg.from, t);
      const Owner receiver_next = lbn.owner(msg.to, t + 1);
      if (sender == receiver_next) continue;  // owner already knows it
      if (sender == Owner::kServer) {
        acc.server_fields += msg.fields;  // free hand-over
        continue;
      }
      // Carol or David must transmit this message content.
      if (sender == Owner::kCarol) {
        acc.carol_fields += msg.fields;
      } else {
        acc.david_fields += msg.fields;
      }
      charged_this_round += msg.fields;
      if (!lbn.is_highway(msg.from) || !lbn.is_highway(msg.to)) {
        acc.only_highway_edges_charged = false;
      }
    }
    acc.max_charged_per_round =
        std::max(acc.max_charged_per_round, charged_this_round);
  }
  return acc;
}

}  // namespace qdc::core
