// Example 1.1: distributed Set Disjointness, classical vs quantum.
//
// Two designated nodes u, v at distance D hold b-bit strings x and y and
// the network must decide whether <x, y> = 0.
//
//  * Classical: u streams x to v through the path, B bits per round
//    (measured by actually running the CONGEST program):
//    Theta(b / B + D) rounds - optimal up to log factors by [DHK+12].
//  * Quantum ([AA05], as the paper invokes it): Grover search for a
//    witness index i with x_i = y_i = 1. Each oracle query is evaluated
//    distributedly (the query register travels u -> v -> u, 2D rounds), so
//    the total is O(sqrt(b) * D) rounds. The search itself is simulated
//    exactly on the statevector; the round count is the protocol
//    accounting of those queries.
//
// This is the one experiment where quantum communication genuinely beats
// the classical lower bound - the reason the paper's Simulation Theorem
// cannot rely on Disjointness and switches to IPmod3 / Gap-Eq instead.
#pragma once

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace qdc::core {

struct DisjointnessComparison {
  bool truth = false;             ///< <x,y> == 0 ?
  bool classical_answer = false;  ///< decided by the CONGEST run
  int classical_rounds = 0;       ///< measured rounds of the CONGEST run
  bool quantum_answer = false;    ///< decided by the Grover protocol
  double quantum_rounds = 0.0;    ///< accounted rounds (queries * 2D + D)
  int grover_queries = 0;         ///< total oracle queries across trials
  double grover_success_probability = 0.0;  ///< last trial's marked mass
};

/// Runs both protocols on a path network of `diameter` + 1 nodes with
/// `b_bits` bits per edge per round. |x| = |y| = b must be a power of two
/// between 2 and 4096 (the Grover register is log2(b) qubits).
DisjointnessComparison compare_disjointness(const BitString& x,
                                            const BitString& y, int diameter,
                                            int b_bits, int grover_trials,
                                            Rng& rng);

}  // namespace qdc::core
