// Evaluable forms of the paper's bounds (Theorems 3.5, 3.6, 3.8;
// Corollaries 3.7, 3.9; Example 1.1), with the explicit parameter choices
// from Section 9. Everything here is a closed-form function of
// (n, B, W, alpha, D) so benches can plot the proved lower envelopes
// against measured algorithm round counts.
//
// Bandwidth convention: the simulator counts *fields* of ~log2(n) bits;
// the paper's B counts bits. `fields_to_bits` converts.
#pragma once

#include <cmath>

namespace qdc::core {

/// B_bits ~= fields * ceil(log2 n).
double fields_to_bits(int fields, int n);

/// Theorem 3.6 / Corollary 3.7: verification lower bound
/// Omega(sqrt(n / (B log n))) for Ham, ST, connectivity, ... (B in bits).
double verification_lower_bound(int n, double b_bits);

/// Theorem 3.8 / Corollary 3.9: optimization lower bound
/// Omega(min(W/alpha, sqrt(n)) / sqrt(B log n)) for alpha-approximate MST,
/// min cut, shortest paths, ...
double optimization_lower_bound(int n, double b_bits, double aspect_ratio,
                                double alpha);

/// The matching upper envelope min(W/alpha, sqrt(n)) + D (Elkin's O(W/alpha)
/// approximation combined with Kutten-Peleg / GKP exact MST).
double mst_upper_envelope(int n, double aspect_ratio, double alpha,
                          int diameter);

/// Figure 3's crossover: the weight aspect ratio where the W/alpha branch
/// meets the sqrt(n) branch, W* = alpha sqrt(n).
double figure3_crossover_aspect(int n, double alpha);

/// Section 9.1's parameter choices for Theorem 3.5: given n and B (bits),
/// L ~ sqrt(n / (B log n)) and Gamma ~ sqrt(n B log n), so that
/// Gamma * L = Theta(n).
struct SimulationParameters {
  int length = 0;  ///< L
  int gamma = 0;   ///< Gamma
};
SimulationParameters theorem35_parameters(int n, double b_bits);

/// Example 1.1: round costs of distributed Disjointness on b-bit inputs
/// over a diameter-D network with B bits per round.
double disjointness_classical_rounds(int b, double b_bits, int diameter);
double disjointness_quantum_rounds(int b, int diameter);
/// The input size at which the quantum protocol starts winning
/// (sqrt(b) D < b / B  <=>  b > (B D)^2).
double disjointness_crossover_bits(double b_bits, int diameter);

}  // namespace qdc::core
