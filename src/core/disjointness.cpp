#include "core/disjointness.hpp"

#include <cmath>

#include "comm/problems.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "quantum/grover.hpp"
#include "util/expect.hpp"

namespace qdc::core {

namespace {

/// The classical streaming protocol on a path 0..D: node 0 pipelines its
/// input bits rightward (B bits per round, one field per bit); the last
/// node decides and floods the answer back so every node knows it.
class StreamDisjointnessProgram : public congest::NodeProgram {
 public:
  StreamDisjointnessProgram(BitString x, BitString y, int path_length)
      : x_(std::move(x)), y_(std::move(y)), path_length_(path_length) {}

  void on_round(congest::NodeContext& ctx,
                const std::vector<congest::Incoming>& inbox) override {
    const bool is_source = ctx.id() == 0;
    const bool is_sink = ctx.id() == path_length_;
    // Collect incoming stream bits / answer.
    for (const congest::Incoming& msg : inbox) {
      const bool from_left = ctx.neighbor(msg.port) < ctx.id();
      if (from_left && !is_source) {
        for (const std::int64_t bit : msg.data) {
          buffer_.push_back(bit != 0);
        }
      } else if (!from_left || is_source) {
        // Answer flowing back.
        answer_ = msg.data[0] != 0;
        have_answer_ = true;
      }
    }
    if (is_source && ctx.round() == 0) {
      buffer_.clear();
      for (std::size_t i = 0; i < x_.size(); ++i) {
        buffer_.push_back(x_.get(i));
      }
    }
    // Forward up to B bits rightward.
    if (!is_sink && !buffer_.empty()) {
      const int right = ctx.port_to(ctx.id() + 1);
      congest::Payload chunk;
      while (!buffer_.empty() &&
             static_cast<int>(chunk.size()) < ctx.bandwidth()) {
        chunk.push_back(buffer_.front() ? 1 : 0);
        buffer_.erase(buffer_.begin());
      }
      ctx.send(right, std::move(chunk));
    }
    // The sink decides once it has all bits.
    if (is_sink && !decided_ && buffer_.size() == y_.size()) {
      decided_ = true;
      std::size_t common = 0;
      for (std::size_t i = 0; i < y_.size(); ++i) {
        if (buffer_[i] && y_.get(i)) ++common;
      }
      answer_ = common == 0;
      have_answer_ = true;
      if (path_length_ > 0) {
        ctx.send(ctx.port_to(ctx.id() - 1), {answer_ ? 1 : 0});
      }
    }
    // Everyone forwards the answer leftward once and halts.
    if (have_answer_) {
      if (!forwarded_ && !is_sink && ctx.id() > 0) {
        forwarded_ = true;
        ctx.send(ctx.port_to(ctx.id() - 1), {answer_ ? 1 : 0});
      }
      ctx.set_output(answer_ ? 1 : 0);
      ctx.halt();
    }
  }

 private:
  BitString x_, y_;
  int path_length_;
  std::vector<bool> buffer_;
  bool decided_ = false;
  bool have_answer_ = false;
  bool answer_ = false;
  bool forwarded_ = false;
};

}  // namespace

DisjointnessComparison compare_disjointness(const BitString& x,
                                            const BitString& y, int diameter,
                                            int b_bits, int grover_trials,
                                            Rng& rng) {
  QDC_EXPECT(x.size() == y.size(), "compare_disjointness: length mismatch");
  QDC_EXPECT(diameter >= 1, "compare_disjointness: diameter must be >= 1");
  QDC_EXPECT(b_bits >= 1, "compare_disjointness: bandwidth must be >= 1");
  QDC_EXPECT(grover_trials >= 1, "compare_disjointness: need >= 1 trial");
  const std::size_t b = x.size();
  QDC_EXPECT(b >= 2 && b <= 4096 && (b & (b - 1)) == 0,
             "compare_disjointness: b must be a power of two in [2, 4096]");

  DisjointnessComparison result;
  result.truth = comm::disjointness(x, y);

  // --- classical run, measured on the CONGEST simulator ---
  congest::Network net(graph::path_graph(diameter + 1),
                       congest::NetworkConfig{.bandwidth = b_bits});
  net.install([&](congest::NodeId, const congest::NodeContext&) {
    return std::make_unique<StreamDisjointnessProgram>(x, y, diameter);
  });
  const auto stats =
      net.run({.max_rounds = static_cast<int>(b) + 4 * diameter + 16});
  QDC_CHECK(stats.completed, "compare_disjointness: classical run stalled");
  result.classical_rounds = stats.rounds;
  result.classical_answer = net.output(0).value() != 0;

  // --- quantum protocol: Grover for a common 1-position ---
  int qubits = 0;
  while ((std::size_t{1} << qubits) < b) ++qubits;
  const auto marked = [&](std::size_t i) {
    return i < b && x.get(i) && y.get(i);
  };
  bool found = false;
  for (int trial = 0; trial < grover_trials && !found; ++trial) {
    const auto grover = quantum::grover_search(qubits, marked, rng);
    result.grover_queries += grover.oracle_queries;
    result.grover_success_probability = grover.success_probability;
    // The measured index is verified classically (one more round trip,
    // absorbed in the constant): one-sided decision.
    if (grover.is_marked) found = true;
  }
  result.quantum_answer = !found;  // disjoint iff no witness found
  result.quantum_rounds =
      2.0 * diameter * result.grover_queries + diameter;
  return result;
}

}  // namespace qdc::core
