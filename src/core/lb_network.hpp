// The lower-bound network N(Gamma, L) of Section 8 (Figures 8, 10, 13).
//
// Gamma "lines" of L nodes each: the first Gamma are plain paths
// P^1..P^Gamma; on top sit k = log2(L-1) highway paths H^1..H^k, where H^i
// has a node at every position 1 + j 2^i. Highway level 1 connects to all
// path nodes in its column; level i connects to level i-1 in its column.
// Columns 1 and L additionally carry cliques over all line endpoints (the
// leftmost/rightmost clique edges of N'), which is where the server-model
// matchings E_C and E_D embed.
//
// Properties (Observation D.2, verified by tests): Theta(Gamma L) nodes and
// Theta(log L) diameter.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qdc::core {

/// Which of the three simulating parties owns a node at a given time step
/// (Equations 36-38).
enum class Owner { kCarol, kDavid, kServer };

class LbNetwork {
 public:
  /// Builds N(Gamma, L). L is rounded up to the next 2^k + 1.
  LbNetwork(int gamma, int length);

  const graph::Graph& topology() const { return topology_; }

  int gamma() const { return gamma_; }
  int length() const { return length_; }          ///< L (after rounding)
  int highway_count() const { return highways_; } ///< k = log2(L-1)
  /// Total lines = gamma + k (paths plus highways); the server-model
  /// instance G lives on this many nodes.
  int line_count() const { return gamma_ + highways_; }

  /// Node id of path node v^i_j (path 0 <= i < gamma, position 1 <= j <= L).
  graph::NodeId path_node(int i, int j) const;

  /// Node id of highway node h^i_j (level 1 <= i <= k; position must be of
  /// the form 1 + m 2^i).
  graph::NodeId highway_node(int level, int j) const;

  /// True if `v` is a highway node.
  bool is_highway(graph::NodeId v) const;

  /// Column position (1..L) of any node.
  int position(graph::NodeId v) const;

  /// Leftmost node (position 1) of line `l` (paths first, then highways).
  graph::NodeId line_start(int l) const;
  /// Rightmost node (position L) of line `l`.
  graph::NodeId line_end(int l) const;

  /// Owner of node v at time t per Equations (36)-(38): Carol owns columns
  /// <= t+1, David owns columns >= L-t, the server owns the middle.
  /// Requires 0 <= t <= L/2 - 2 (so the sets stay disjoint).
  Owner owner(graph::NodeId v, int t) const;

  /// Largest time step the ownership schedule supports: L/2 - 2.
  int max_simulated_rounds() const { return length_ / 2 - 2; }

  /// Embeds a server-model instance G = (U, E_C + E_D) given by two perfect
  /// matchings over the line_count() lines: the subnetwork M consists of
  /// all path and highway edges, E_C as a matching over line starts, and
  /// E_D over line ends (Figure 10's bold edges). Observation 8.1: M has
  /// exactly as many cycles as G.
  graph::EdgeSubset embed_matchings(
      const std::vector<graph::Edge>& carol_matching,
      const std::vector<graph::Edge>& david_matching) const;

 private:
  int gamma_;
  int length_;
  int highways_;
  graph::Graph topology_;
  // highway node ids: highway_ids_[level-1][m] = id of h^level_{1 + m 2^level}
  std::vector<std::vector<graph::NodeId>> highway_ids_;
  std::vector<int> position_;  // per node
  std::vector<int> highway_level_;  // 0 for path nodes
};

}  // namespace qdc::core
