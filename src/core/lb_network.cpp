#include "core/lb_network.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace qdc::core {

namespace {

/// Smallest 2^k + 1 that is >= length, with k >= 1.
int round_up_length(int length) {
  int k = 1;
  while ((1 << k) + 1 < length) ++k;
  return (1 << k) + 1;
}

}  // namespace

LbNetwork::LbNetwork(int gamma, int length) : gamma_(gamma) {
  QDC_EXPECT(gamma >= 1, "LbNetwork: need at least one path");
  QDC_EXPECT(length >= 3, "LbNetwork: length must be >= 3");
  length_ = round_up_length(length);
  highways_ = 0;
  while ((1 << (highways_ + 1)) <= length_ - 1) ++highways_;
  // length_ = 2^k + 1 exactly, so highways_ == k.

  // Count nodes: paths gamma * L; highway level i has (L-1)/2^i + 1 nodes.
  int total = gamma_ * length_;
  std::vector<int> level_base(static_cast<std::size_t>(highways_) + 1, 0);
  for (int lvl = 1; lvl <= highways_; ++lvl) {
    level_base[static_cast<std::size_t>(lvl)] = total;
    total += (length_ - 1) / (1 << lvl) + 1;
  }
  topology_ = graph::Graph(total);
  position_.assign(static_cast<std::size_t>(total), 0);
  highway_level_.assign(static_cast<std::size_t>(total), 0);

  // Path nodes: id = i * L + (j - 1).
  for (int i = 0; i < gamma_; ++i) {
    for (int j = 1; j <= length_; ++j) {
      position_[static_cast<std::size_t>(i * length_ + j - 1)] = j;
    }
    for (int j = 1; j < length_; ++j) {
      topology_.add_edge(path_node(i, j), path_node(i, j + 1));
    }
  }
  // Highway nodes and intra-highway edges.
  highway_ids_.resize(static_cast<std::size_t>(highways_));
  for (int lvl = 1; lvl <= highways_; ++lvl) {
    auto& ids = highway_ids_[static_cast<std::size_t>(lvl - 1)];
    const int step = 1 << lvl;
    for (int j = 1, m = 0; j <= length_; j += step, ++m) {
      const graph::NodeId id = level_base[static_cast<std::size_t>(lvl)] + m;
      ids.push_back(id);
      position_[static_cast<std::size_t>(id)] = j;
      highway_level_[static_cast<std::size_t>(id)] = lvl;
      if (m > 0) {
        topology_.add_edge(ids[static_cast<std::size_t>(m - 1)], id);
      }
    }
  }
  // Level-1 highway connects to every path in its column; level i connects
  // to level i-1 in its column.
  for (int lvl = 1; lvl <= highways_; ++lvl) {
    for (graph::NodeId h : highway_ids_[static_cast<std::size_t>(lvl - 1)]) {
      const int j = position_[static_cast<std::size_t>(h)];
      if (lvl == 1) {
        for (int i = 0; i < gamma_; ++i) {
          topology_.add_edge(h, path_node(i, j));
        }
      } else {
        topology_.add_edge(h, highway_node(lvl - 1, j));
      }
    }
  }
  // End-column cliques over all line endpoints.
  for (const bool right : {false, true}) {
    std::vector<graph::NodeId> column;
    for (int l = 0; l < line_count(); ++l) {
      column.push_back(right ? line_end(l) : line_start(l));
    }
    for (std::size_t a = 0; a < column.size(); ++a) {
      for (std::size_t b = a + 1; b < column.size(); ++b) {
        topology_.add_edge(column[a], column[b]);
      }
    }
  }
}

graph::NodeId LbNetwork::path_node(int i, int j) const {
  QDC_EXPECT(i >= 0 && i < gamma_ && j >= 1 && j <= length_,
             "LbNetwork::path_node: out of range");
  return i * length_ + j - 1;
}

graph::NodeId LbNetwork::highway_node(int level, int j) const {
  QDC_EXPECT(level >= 1 && level <= highways_,
             "LbNetwork::highway_node: bad level");
  const int step = 1 << level;
  QDC_EXPECT(j >= 1 && j <= length_ && (j - 1) % step == 0,
             "LbNetwork::highway_node: bad position");
  return highway_ids_[static_cast<std::size_t>(level - 1)]
                     [static_cast<std::size_t>((j - 1) / step)];
}

bool LbNetwork::is_highway(graph::NodeId v) const {
  QDC_EXPECT(topology_.valid_node(v), "LbNetwork::is_highway: bad node");
  return highway_level_[static_cast<std::size_t>(v)] > 0;
}

int LbNetwork::position(graph::NodeId v) const {
  QDC_EXPECT(topology_.valid_node(v), "LbNetwork::position: bad node");
  return position_[static_cast<std::size_t>(v)];
}

graph::NodeId LbNetwork::line_start(int l) const {
  QDC_EXPECT(l >= 0 && l < line_count(), "LbNetwork::line_start: bad line");
  return l < gamma_ ? path_node(l, 1) : highway_node(l - gamma_ + 1, 1);
}

graph::NodeId LbNetwork::line_end(int l) const {
  QDC_EXPECT(l >= 0 && l < line_count(), "LbNetwork::line_end: bad line");
  return l < gamma_ ? path_node(l, length_)
                    : highway_node(l - gamma_ + 1, length_);
}

Owner LbNetwork::owner(graph::NodeId v, int t) const {
  QDC_EXPECT(t >= 0 && t <= max_simulated_rounds() + 1,
             "LbNetwork::owner: time outside the simulation schedule");
  const int j = position(v);
  if (j <= t + 1) return Owner::kCarol;
  if (j >= length_ - t) return Owner::kDavid;
  return Owner::kServer;
}

graph::EdgeSubset LbNetwork::embed_matchings(
    const std::vector<graph::Edge>& carol_matching,
    const std::vector<graph::Edge>& david_matching) const {
  const int lines = line_count();
  const auto check_matching = [lines](const std::vector<graph::Edge>& m) {
    std::vector<int> covered(static_cast<std::size_t>(lines), 0);
    for (const graph::Edge& e : m) {
      QDC_CHECK(e.u >= 0 && e.u < lines && e.v >= 0 && e.v < lines &&
                    e.u != e.v,
                "embed_matchings: matching edge out of range");
      ++covered[static_cast<std::size_t>(e.u)];
      ++covered[static_cast<std::size_t>(e.v)];
    }
    for (int c : covered) {
      QDC_CHECK(c == 1, "embed_matchings: not a perfect matching");
    }
  };
  check_matching(carol_matching);
  check_matching(david_matching);

  graph::EdgeSubset m(topology_.edge_count());
  // All path and highway edges participate (and column links between
  // highway levels / paths do NOT; Figure 10 keeps only horizontal edges).
  for (graph::EdgeId e = 0; e < topology_.edge_count(); ++e) {
    const auto& edge = topology_.edge(e);
    const int pu = position(edge.u);
    const int pv = position(edge.v);
    if (pu == pv) continue;  // vertical column link or end-column clique
    // Horizontal edges join consecutive positions within one line; both
    // endpoints share their line by construction.
    m.insert(e);
  }
  // Matching edges live on the end-column cliques.
  const auto add_matching = [&](const std::vector<graph::Edge>& matching,
                                bool right) {
    for (const graph::Edge& e : matching) {
      const graph::NodeId a = right ? line_end(e.u) : line_start(e.u);
      const graph::NodeId b = right ? line_end(e.v) : line_start(e.v);
      bool found = false;
      for (const graph::Adjacency& adj : topology_.neighbors(a)) {
        if (adj.neighbor == b) {
          m.insert(adj.edge);
          found = true;
          break;
        }
      }
      QDC_CHECK(found, "embed_matchings: clique edge missing");
    }
  };
  add_matching(carol_matching, /*right=*/false);
  add_matching(david_matching, /*right=*/true);
  return m;
}

}  // namespace qdc::core
