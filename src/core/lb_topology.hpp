// Implicit TopologyView of the lower-bound network N(Gamma, L).
//
// LbNetwork (core/lb_network.hpp) materializes N(Gamma, L) as a
// graph::Graph — fine up to ~10^4 nodes, hopeless at the 10^6..10^7 scale
// the engine benchmarks target, where adjacency lists alone would cost
// gigabytes. LbTopologyView answers every TopologyView query from the
// closed-form structure instead: node ids, edge ids, degrees, ports and
// endpoints are all arithmetic over (Gamma, L, k), with only O(k) section
// offsets stored.
//
// The numbering is *identical* to LbNetwork's construction order (nodes:
// paths row-major, then highway levels; edges: path edges, intra-highway
// edges, column links level by level, left clique, right clique), so a
// Network built over this view is bit-for-bit interchangeable with one
// built over LbNetwork(gamma, length).topology() — a property pinned by
// tests at small sizes and relied on by the million-node benchmarks.
#pragma once

#include <vector>

#include "congest/topology.hpp"
#include "graph/graph.hpp"

namespace qdc::core {

class LbTopologyView final : public congest::TopologyView {
 public:
  /// Describes N(Gamma, L); L is rounded up to the next 2^k + 1, exactly
  /// as LbNetwork does.
  LbTopologyView(int gamma, int length);

  int node_count() const override { return nodes_; }
  int edge_count() const override { return edges_; }
  int degree(graph::NodeId u) const override;
  graph::NodeId neighbor(graph::NodeId u, int port) const override;
  graph::EdgeId edge_at(graph::NodeId u, int port) const override;
  graph::Edge edge(graph::EdgeId e) const override;
  const char* kind() const override { return "lb_network"; }

  int gamma() const { return gamma_; }
  int length() const { return length_; }          ///< L (after rounding)
  int highway_count() const { return highways_; } ///< k = log2(L - 1)
  int line_count() const { return gamma_ + highways_; }

  /// Node id of path node v^i_j (path 0 <= i < gamma, position 1 <= j <= L).
  graph::NodeId path_node(int i, int j) const;

  /// Node id of highway node h^lvl at index m (position 1 + m 2^lvl).
  graph::NodeId highway_node_at(int level, int m) const;

 private:
  /// Resolves port `port` of node `u` to (edge id, peer id) in one walk
  /// over the node's port sections (ports are in increasing edge-id order).
  void port_entry(graph::NodeId u, int port, graph::EdgeId* edge,
                  graph::NodeId* peer) const;

  /// Member `l` (line index; paths first, then highways) of the left or
  /// right end-column clique.
  graph::NodeId clique_member(bool right, int l) const;

  /// Lexicographic rank of pair (a, b), a < b, among the line_count()
  /// endpoints of one clique.
  int clique_rank(int a, int b) const;

  int gamma_;
  int length_;
  int highways_;  // k
  int nodes_ = 0;
  int edges_ = 0;

  // Section offsets, all O(k) in size. Highway level lvl (1-based) has
  // count_[lvl] nodes starting at node_base_[lvl]; its intra edges start
  // at intra_base_[lvl]; the column links whose upper endpoint is level
  // lvl start at col_base_[lvl] (level 1 links carry Gamma edges per
  // highway node, higher levels one each). clique_base_[0] / [1] are the
  // left / right end-column cliques.
  std::vector<int> count_;
  std::vector<int> node_base_;
  std::vector<int> intra_base_;
  std::vector<int> col_base_;
  int clique_base_[2] = {0, 0};
};

}  // namespace qdc::core
