// The gadget reductions of Section 7 / Appendix C.
//
// IPmod3 -> Hamiltonian cycle (Figures 4, 5, 6, 12; Lemma 7.2 / C.3):
// the input strings x, y are compiled into a graph G made of n chained
// gadgets over three "tracks". Carol's edges depend only on x, David's
// only on y, each forming a perfect matching of G (Lemma C.3), and gadget
// i advances a track permutation by sigma^{x_i y_i} for the 3-cycle
// sigma = (0 1 2). Our concrete gadget realizes this as a width-3
// Barrington-style group program: with the transpositions h = (0 2)
// (Carol's, applied as h^{x_i} twice) and g = (0 1) (David's, applied as
// g^{y_i} twice), the through-permutation is
//     g^{y} . h^{x} . g^{y} . h^{x}  =  sigma^{x y}
// (the commutator trick: it is sigma iff x = y = 1, identity otherwise).
// Closing the tracks around (v_0 = v_n) makes G a single Hamiltonian cycle
// iff sum_i x_i y_i != 0 (mod 3), and exactly 3 disjoint cycles otherwise.
//
// Gap-Equality -> Gap-Ham (Figure 7): two tracks, chained gadgets with the
// end columns contracted to single nodes s and t. A matched position
// passes both tracks through; a mismatched position closes both sides
// (the left tracks turn back, the right tracks start fresh), so x = y
// yields one Hamiltonian cycle while delta mismatches yield delta + 1
// disjoint cycles. The per-position matchings were found by exhaustive
// search over all gadget matchings satisfying Observation 7.1's locality
// constraints (Carol's matching covers everything but the right boundary
// and depends only on x_i; David's covers everything but the left boundary
// and depends only on y_i).
#pragma once

#include "graph/graph.hpp"
#include "util/bitstring.hpp"

namespace qdc::gadgets {

/// A gadget graph together with the edge ownership split of
/// Definition 3.3: Carol holds E_C(G), David holds E_D(G).
struct OwnedGraph {
  graph::Graph g;
  graph::EdgeSubset carol_edges;
  graph::EdgeSubset david_edges;
};

/// Builds the IPmod3 -> Ham graph for inputs x, y (|x| = |y| = n >= 1).
/// The graph has 12 n nodes; every node has degree exactly 2.
OwnedGraph build_ip_mod3_ham_graph(const BitString& x, const BitString& y);

/// Number of track-columns per input position (the paper's constant c
/// with |V(G)| = c n).
inline constexpr int kIpMod3NodesPerPosition = 12;

/// Builds the Gap-Eq -> Ham graph for x, y (|x| = |y| = n >= 1). The graph
/// has 8 n nodes (6 internals per position plus the boundary columns, with
/// the two end columns contracted to single nodes s, t); all degrees are 2.
OwnedGraph build_eq_ham_graph(const BitString& x, const BitString& y);

/// End-to-end check of the Section 7 reduction: decides
/// "sum x_i y_i mod 3 != 0" by building the gadget graph and testing
/// Hamiltonicity (must agree with the arithmetic truth; property-tested).
bool ip_mod3_nonzero_via_ham(const BitString& x, const BitString& y);

/// End-to-end check of the Figure 7 reduction: decides x == y by testing
/// Hamiltonicity of the Eq gadget graph.
bool equality_via_ham(const BitString& x, const BitString& y);

/// Section 9.1's Ham -> spanning-tree reduction: removing any single edge
/// from a degree-2 graph leaves a spanning tree iff the graph was a
/// Hamiltonian cycle. Returns the reduced instance (same nodes, one edge
/// dropped).
graph::Graph spanning_tree_instance_from_ham(const graph::Graph& g,
                                             graph::EdgeId removed);

}  // namespace qdc::gadgets
