#include "gadgets/ham_gadgets.hpp"

#include <array>

#include "graph/algorithms.hpp"
#include "util/expect.hpp"

namespace qdc::gadgets {

namespace {

/// h = (0 2) and g = (0 1) as index maps; h^0 = g^0 = identity.
int perm_h(int j, bool apply) {
  if (!apply) return j;
  return j == 0 ? 2 : (j == 2 ? 0 : 1);
}
int perm_g(int j, bool apply) {
  if (!apply) return j;
  return j == 0 ? 1 : (j == 1 ? 0 : 2);
}

}  // namespace

OwnedGraph build_ip_mod3_ham_graph(const BitString& x, const BitString& y) {
  QDC_EXPECT(x.size() == y.size() && !x.empty(),
             "build_ip_mod3_ham_graph: inputs must be same nonzero length");
  const int n = static_cast<int>(x.size());
  // Per position i: boundary column (3 nodes) + three internal columns
  // M1, M2, M3 (3 nodes each). Boundary column i is the left boundary of
  // gadget i and the right boundary of gadget i-1 (cyclically).
  const auto boundary = [n](int col, int j) {
    return 12 * ((col % n + n) % n) + j;
  };
  const auto internal = [](int i, int layer, int j) {
    return 12 * i + 3 + 3 * layer + j;  // layer in {0,1,2} = M1, M2, M3
  };

  OwnedGraph out;
  out.g = graph::Graph(12 * n);
  std::vector<graph::EdgeId> carol, david;
  for (int i = 0; i < n; ++i) {
    const bool xi = x.get(static_cast<std::size_t>(i));
    const bool yi = y.get(static_cast<std::size_t>(i));
    for (int j = 0; j < 3; ++j) {
      // Carol: L_j -- M1_{h^x(j)}  and  M2_j -- M3_{h^x(j)}.
      carol.push_back(
          out.g.add_edge(boundary(i, j), internal(i, 0, perm_h(j, xi))));
      carol.push_back(
          out.g.add_edge(internal(i, 1, j), internal(i, 2, perm_h(j, xi))));
      // David: M1_j -- M2_{g^y(j)}  and  M3_j -- R_{g^y(j)}.
      david.push_back(
          out.g.add_edge(internal(i, 0, j), internal(i, 1, perm_g(j, yi))));
      david.push_back(
          out.g.add_edge(internal(i, 2, j), boundary(i + 1, perm_g(j, yi))));
    }
  }
  out.carol_edges = graph::EdgeSubset::of(out.g.edge_count(), carol);
  out.david_edges = graph::EdgeSubset::of(out.g.edge_count(), david);
  return out;
}

OwnedGraph build_eq_ham_graph(const BitString& x, const BitString& y) {
  QDC_EXPECT(x.size() == y.size() && !x.empty(),
             "build_eq_ham_graph: inputs must be same nonzero length");
  const int n = static_cast<int>(x.size());
  // Node layout: s = 0, t = 1; boundary columns 1..n-1 hold 2 nodes each;
  // gadget i (0-based) has 6 internal nodes a0 a1 b0 b1 c0 c1.
  // Total: 2 + 2 (n - 1) + 6 n = 8 n.
  const int node_count = 8 * n;
  const auto left = [](int i, int j) {
    // Left boundary of gadget i: s when i == 0.
    return i == 0 ? 0 : 2 + 2 * (i - 1) + j;
  };
  const auto right = [n](int i, int j) {
    // Right boundary of gadget i: t when i == n-1.
    return i == n - 1 ? 1 : 2 + 2 * i + j;
  };
  const auto internal = [n](int i, int k) {
    return 2 + 2 * (n - 1) + 6 * i + k;  // k in 0..5 = a0 a1 b0 b1 c0 c1
  };

  OwnedGraph out;
  out.g = graph::Graph(node_count);
  std::vector<graph::EdgeId> carol, david;
  for (int i = 0; i < n; ++i) {
    const bool xi = x.get(static_cast<std::size_t>(i));
    const bool yi = y.get(static_cast<std::size_t>(i));
    const int a0 = internal(i, 0), a1 = internal(i, 1);
    const int b0 = internal(i, 2), b1 = internal(i, 3);
    const int c0 = internal(i, 4), c1 = internal(i, 5);
    // Carol (found by exhaustive search; see header):
    //   x = 0: (L0,a0) (L1,a1) (b0,b1) (c0,c1)
    //   x = 1: (L0,a0) (L1,a1) (b0,c0) (b1,c1)
    carol.push_back(out.g.add_edge(left(i, 0), a0));
    carol.push_back(out.g.add_edge(left(i, 1), a1));
    if (!xi) {
      carol.push_back(out.g.add_edge(b0, b1));
      carol.push_back(out.g.add_edge(c0, c1));
    } else {
      carol.push_back(out.g.add_edge(b0, c0));
      carol.push_back(out.g.add_edge(b1, c1));
    }
    // David:
    //   y = 0: (a0,b0) (a1,c0) (b1,R0) (c1,R1)
    //   y = 1: (a0,b0) (a1,b1) (c0,R0) (c1,R1)
    david.push_back(out.g.add_edge(a0, b0));
    if (!yi) {
      david.push_back(out.g.add_edge(a1, c0));
      david.push_back(out.g.add_edge(b1, right(i, 0)));
      david.push_back(out.g.add_edge(c1, right(i, 1)));
    } else {
      david.push_back(out.g.add_edge(a1, b1));
      david.push_back(out.g.add_edge(c0, right(i, 0)));
      david.push_back(out.g.add_edge(c1, right(i, 1)));
    }
  }
  out.carol_edges = graph::EdgeSubset::of(out.g.edge_count(), carol);
  out.david_edges = graph::EdgeSubset::of(out.g.edge_count(), david);
  return out;
}

bool ip_mod3_nonzero_via_ham(const BitString& x, const BitString& y) {
  const OwnedGraph g = build_ip_mod3_ham_graph(x, y);
  return graph::is_hamiltonian_cycle(g.g);
}

bool equality_via_ham(const BitString& x, const BitString& y) {
  const OwnedGraph g = build_eq_ham_graph(x, y);
  return graph::is_hamiltonian_cycle(g.g);
}

graph::Graph spanning_tree_instance_from_ham(const graph::Graph& g,
                                             graph::EdgeId removed) {
  QDC_EXPECT(removed >= 0 && removed < g.edge_count(),
             "spanning_tree_instance_from_ham: bad edge");
  graph::EdgeSubset keep = graph::EdgeSubset::all(g.edge_count());
  keep.erase(removed);
  return graph::subgraph(g, keep);
}

}  // namespace qdc::gadgets
