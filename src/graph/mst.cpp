#include "graph/mst.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "graph/algorithms.hpp"
#include "graph/dsu.hpp"
#include "util/expect.hpp"

namespace qdc::graph {

namespace {

/// Kruskal on arbitrary keys: sorts edges by (key, id) and adds acyclically.
MstResult kruskal_by_key(const WeightedGraph& g,
                         const std::vector<double>& key) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    const double ka = key[static_cast<std::size_t>(a)];
    const double kb = key[static_cast<std::size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });
  DisjointSetUnion dsu(g.node_count());
  MstResult result;
  for (EdgeId e : order) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) {
      result.edges.push_back(e);
      result.weight += g.weight(e);
    }
  }
  return result;
}

}  // namespace

MstResult mst_kruskal(const WeightedGraph& g) {
  return kruskal_by_key(g, g.weights());
}

MstResult mst_prim(const WeightedGraph& g) {
  QDC_EXPECT(g.node_count() > 0, "mst_prim: empty graph");
  QDC_CHECK(is_connected(g.topology()), "mst_prim: graph must be connected");
  const auto cmp_edge = [&](EdgeId a, EdgeId b) {
    return g.weight(a) != g.weight(b) ? g.weight(a) > g.weight(b) : a > b;
  };
  std::priority_queue<EdgeId, std::vector<EdgeId>, decltype(cmp_edge)>
      frontier(cmp_edge);
  std::vector<bool> in_tree(static_cast<std::size_t>(g.node_count()), false);
  MstResult result;

  const auto absorb = [&](NodeId u) {
    in_tree[static_cast<std::size_t>(u)] = true;
    for (const Adjacency& a : g.neighbors(u)) {
      if (!in_tree[static_cast<std::size_t>(a.neighbor)]) {
        frontier.push(a.edge);
      }
    }
  };

  absorb(0);
  while (!frontier.empty()) {
    const EdgeId e = frontier.top();
    frontier.pop();
    const Edge& edge = g.edge(e);
    const bool u_in = in_tree[static_cast<std::size_t>(edge.u)];
    const bool v_in = in_tree[static_cast<std::size_t>(edge.v)];
    if (u_in && v_in) continue;
    result.edges.push_back(e);
    result.weight += g.weight(e);
    absorb(u_in ? edge.v : edge.u);
  }
  return result;
}

MstResult mst_boruvka(const WeightedGraph& g) {
  DisjointSetUnion dsu(g.node_count());
  MstResult result;
  bool merged = true;
  while (merged && dsu.set_count() > 1) {
    merged = false;
    // Minimum-weight outgoing edge (MWOE) per fragment; ties by EdgeId make
    // the choice consistent on both sides, so the union of MWOEs is acyclic.
    std::vector<EdgeId> best(static_cast<std::size_t>(g.node_count()), -1);
    const auto better = [&](EdgeId a, EdgeId b) {
      if (b == -1) return true;
      if (g.weight(a) != g.weight(b)) return g.weight(a) < g.weight(b);
      return a < b;
    };
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const int ru = dsu.find(g.edge(e).u);
      const int rv = dsu.find(g.edge(e).v);
      if (ru == rv) continue;
      if (better(e, best[static_cast<std::size_t>(ru)])) {
        best[static_cast<std::size_t>(ru)] = e;
      }
      if (better(e, best[static_cast<std::size_t>(rv)])) {
        best[static_cast<std::size_t>(rv)] = e;
      }
    }
    for (EdgeId e : best) {
      if (e == -1) continue;
      if (dsu.unite(g.edge(e).u, g.edge(e).v)) {
        result.edges.push_back(e);
        result.weight += g.weight(e);
        merged = true;
      }
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

double mst_weight(const WeightedGraph& g) { return mst_kruskal(g).weight; }

MstResult mst_rounded_approx(const WeightedGraph& g, double alpha) {
  QDC_EXPECT(alpha >= 1.0, "mst_rounded_approx: alpha must be >= 1");
  if (g.edge_count() == 0) return {};
  const double min_w =
      *std::min_element(g.weights().begin(), g.weights().end());
  std::vector<double> bucket(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    // Bucket index: floor(log_alpha(w / min_w)); alpha == 1 keeps exact
    // weights (zero-width buckets degenerate to the identity).
    bucket[static_cast<std::size_t>(e)] =
        alpha == 1.0 ? g.weight(e)
                     : std::floor(std::log(g.weight(e) / min_w) /
                                  std::log(alpha));
  }
  MstResult rounded = kruskal_by_key(g, bucket);
  // Recompute true weight (kruskal_by_key already sums true weights).
  return rounded;
}

}  // namespace qdc::graph
