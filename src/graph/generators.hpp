// Graph generators used by tests, examples and benchmark workloads.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qdc::graph {

Graph path_graph(int n);
Graph cycle_graph(int n);
Graph complete_graph(int n);
Graph star_graph(int n);
Graph grid_graph(int rows, int cols);

/// Uniform random labelled tree (random Prufer sequence). n >= 1.
Graph random_tree(int n, Rng& rng);

/// Erdos-Renyi G(n, p) without parallel edges.
Graph random_gnp(int n, double p, Rng& rng);

/// Connected random graph: random tree plus each non-tree pair independently
/// with probability p.
Graph random_connected(int n, double p, Rng& rng);

/// Random weights in [min_w, max_w] on an existing topology.
WeightedGraph randomly_weighted(const Graph& g, double min_w, double max_w,
                                Rng& rng);

/// Random connected weighted graph whose weight aspect ratio is exactly W:
/// one edge gets weight W, one gets weight 1, the rest are uniform in
/// [1, W].
WeightedGraph random_weighted_aspect(int n, double p, double aspect,
                                     Rng& rng);

/// Random subset of g's edges, each kept independently with probability p.
EdgeSubset random_edge_subset(const Graph& g, double p, Rng& rng);

/// Random Hamiltonian cycle through all n nodes of the complete graph; the
/// returned graph contains exactly those n edges.
Graph random_hamiltonian_cycle(int n, Rng& rng);

/// A uniformly random perfect matching on nodes 0..n-1 (n even), returned
/// as the list of matched pairs.
std::vector<Edge> random_perfect_matching(int n, Rng& rng);

}  // namespace qdc::graph
