// Sequential minimum-spanning-tree algorithms: Kruskal, Prim and Boruvka.
// These are the ground truth for the distributed MST algorithms of
// Section 3.2 (exact and alpha-approximate).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qdc::graph {

struct MstResult {
  std::vector<EdgeId> edges;  ///< edges of the spanning forest
  double weight = 0.0;        ///< total weight
};

/// Kruskal's algorithm. Works on disconnected graphs (returns a minimum
/// spanning forest). Ties are broken by EdgeId so the result is
/// deterministic.
MstResult mst_kruskal(const WeightedGraph& g);

/// Prim's algorithm from node 0. Requires a connected graph.
MstResult mst_prim(const WeightedGraph& g);

/// Boruvka's algorithm (the sequential skeleton of GHS). Works on
/// disconnected graphs. Ties are broken by EdgeId, which also guarantees
/// no cycles among simultaneously chosen edges.
MstResult mst_boruvka(const WeightedGraph& g);

/// Weight of the minimum spanning forest (Kruskal).
double mst_weight(const WeightedGraph& g);

/// An alpha-approximate MST obtained by bucketing weights into powers of
/// alpha and running Kruskal on bucket indices (the classic rounding that
/// underlies Elkin's O(W/alpha)-time distributed algorithm). Requires
/// alpha >= 1; returns a spanning forest whose weight is at most
/// alpha * mst_weight(g).
MstResult mst_rounded_approx(const WeightedGraph& g, double alpha);

}  // namespace qdc::graph
