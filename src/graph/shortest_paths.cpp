#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "graph/algorithms.hpp"
#include "util/expect.hpp"

namespace qdc::graph {

ShortestPathTree dijkstra(const WeightedGraph& g, NodeId source) {
  QDC_EXPECT(g.topology().valid_node(source), "dijkstra: bad source");
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree out{std::vector<double>(n, kInfiniteDistance),
                       std::vector<EdgeId>(n, -1)};
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  out.distance[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.distance[static_cast<std::size_t>(u)]) continue;
    for (const Adjacency& a : g.neighbors(u)) {
      const double nd = d + g.weight(a.edge);
      auto& cur = out.distance[static_cast<std::size_t>(a.neighbor)];
      if (nd < cur) {
        cur = nd;
        out.parent_edge[static_cast<std::size_t>(a.neighbor)] = a.edge;
        heap.emplace(nd, a.neighbor);
      }
    }
  }
  return out;
}

ShortestPathTree bellman_ford(const WeightedGraph& g, NodeId source) {
  QDC_EXPECT(g.topology().valid_node(source), "bellman_ford: bad source");
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree out{std::vector<double>(n, kInfiniteDistance),
                       std::vector<EdgeId>(n, -1)};
  out.distance[static_cast<std::size_t>(source)] = 0.0;
  for (int iter = 0; iter + 1 < g.node_count(); ++iter) {
    bool changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const double w = g.weight(e);
      for (const auto& [from, to] :
           {std::pair{edge.u, edge.v}, std::pair{edge.v, edge.u}}) {
        const double nd = out.distance[static_cast<std::size_t>(from)] + w;
        auto& cur = out.distance[static_cast<std::size_t>(to)];
        if (nd < cur) {
          cur = nd;
          out.parent_edge[static_cast<std::size_t>(to)] = e;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return out;
}

double st_distance(const WeightedGraph& g, NodeId s, NodeId t) {
  QDC_EXPECT(g.topology().valid_node(t), "st_distance: bad target t");
  return dijkstra(g, s).distance[static_cast<std::size_t>(t)];
}

bool is_shortest_path_tree(const WeightedGraph& g, const EdgeSubset& tree,
                           NodeId source) {
  const Graph sub = subgraph(g.topology(), tree);
  if (!is_spanning_tree(sub)) return false;
  // Distances inside the tree must match the true distances.
  WeightedGraph tree_weighted(g.node_count());
  for (EdgeId e : tree.to_vector()) {
    tree_weighted.add_edge(g.edge(e).u, g.edge(e).v, g.weight(e));
  }
  const auto true_dist = dijkstra(g, source).distance;
  const auto tree_dist = dijkstra(tree_weighted, source).distance;
  for (std::size_t i = 0; i < true_dist.size(); ++i) {
    if (std::abs(true_dist[i] - tree_dist[i]) > 1e-9) return false;
  }
  return true;
}

std::vector<LeListEntry> least_element_list(const WeightedGraph& g, NodeId u,
                                            const std::vector<int>& rank) {
  QDC_EXPECT(rank.size() == static_cast<std::size_t>(g.node_count()),
             "least_element_list: rank size mismatch");
  const auto dist = dijkstra(g, u).distance;
  // Sort nodes by distance from u (ties by rank: a closer-or-equal node of
  // smaller rank dominates). v enters the LE-list iff it has strictly the
  // minimum rank among all nodes w with d(u,w) <= d(u,v).
  std::vector<NodeId> order;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dist[static_cast<std::size_t>(v)] < kInfiniteDistance) {
      order.push_back(v);
    }
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double da = dist[static_cast<std::size_t>(a)];
    const double db = dist[static_cast<std::size_t>(b)];
    if (da != db) return da < db;
    return rank[static_cast<std::size_t>(a)] <
           rank[static_cast<std::size_t>(b)];
  });
  std::vector<LeListEntry> list;
  int best_rank = std::numeric_limits<int>::max();
  for (NodeId v : order) {
    if (rank[static_cast<std::size_t>(v)] < best_rank) {
      best_rank = rank[static_cast<std::size_t>(v)];
      list.push_back(LeListEntry{v, dist[static_cast<std::size_t>(v)]});
    }
  }
  return list;
}

}  // namespace qdc::graph
