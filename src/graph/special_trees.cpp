#include "graph/special_trees.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "graph/mst.hpp"
#include "graph/shortest_paths.hpp"
#include "util/expect.hpp"

namespace qdc::graph {

namespace {

/// DFS over the MST relaxing distances; grafts the SPT edge whenever the
/// walk distance exceeds alpha times the true distance (the KRY "LAST"
/// traversal).
struct LastBuilder {
  const WeightedGraph& g;
  const std::vector<std::vector<Adjacency>>& mst_adj;
  const ShortestPathTree& spt;
  double alpha;
  std::vector<double> dist;
  std::vector<EdgeId> parent_edge;
  std::vector<bool> visited;

  /// Relaxes `to` through `edge` from `from`. Refuses to assign an edge
  /// that already serves as the other endpoint's parent (a graft can set
  /// d[v] below d[u] - w while v's parent is the very edge (u, v); letting
  /// u adopt it back would create a two-cycle in the parent pointers).
  void relax(NodeId from, NodeId to, EdgeId edge) {
    const double through =
        dist[static_cast<std::size_t>(from)] + g.weight(edge);
    if (through < dist[static_cast<std::size_t>(to)] &&
        parent_edge[static_cast<std::size_t>(from)] != edge) {
      dist[static_cast<std::size_t>(to)] = through;
      parent_edge[static_cast<std::size_t>(to)] = edge;
    }
  }

  void dfs(NodeId u) {
    visited[static_cast<std::size_t>(u)] = true;
    if (dist[static_cast<std::size_t>(u)] >
        alpha * spt.distance[static_cast<std::size_t>(u)] + 1e-12) {
      // Too deep: graft the shortest-path edge towards the root.
      dist[static_cast<std::size_t>(u)] =
          spt.distance[static_cast<std::size_t>(u)];
      parent_edge[static_cast<std::size_t>(u)] =
          spt.parent_edge[static_cast<std::size_t>(u)];
    }
    for (const Adjacency& a : mst_adj[static_cast<std::size_t>(u)]) {
      relax(u, a.neighbor, a.edge);
      if (!visited[static_cast<std::size_t>(a.neighbor)]) {
        dfs(a.neighbor);
        // Relax back along the return of the walk.
        relax(a.neighbor, u, a.edge);
      }
    }
  }
};

}  // namespace

SpanningTreeResult shallow_light_tree(const WeightedGraph& g, NodeId root,
                                      double alpha) {
  QDC_EXPECT(alpha > 1.0, "shallow_light_tree: alpha must exceed 1");
  QDC_EXPECT(g.topology().valid_node(root), "shallow_light_tree: bad root");
  QDC_CHECK(is_connected(g.topology()),
            "shallow_light_tree: graph must be connected");
  const auto mst = mst_kruskal(g);
  std::vector<std::vector<Adjacency>> mst_adj(
      static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : mst.edges) {
    mst_adj[static_cast<std::size_t>(g.edge(e).u)].push_back(
        Adjacency{g.edge(e).v, e});
    mst_adj[static_cast<std::size_t>(g.edge(e).v)].push_back(
        Adjacency{g.edge(e).u, e});
  }
  const auto spt = dijkstra(g, root);

  LastBuilder builder{
      g,
      mst_adj,
      spt,
      alpha,
      std::vector<double>(static_cast<std::size_t>(g.node_count()),
                          std::numeric_limits<double>::infinity()),
      std::vector<EdgeId>(static_cast<std::size_t>(g.node_count()), -1),
      std::vector<bool>(static_cast<std::size_t>(g.node_count()), false)};
  builder.dist[static_cast<std::size_t>(root)] = 0.0;
  builder.dfs(root);

  SpanningTreeResult result;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == root) continue;
    const EdgeId e = builder.parent_edge[static_cast<std::size_t>(v)];
    QDC_CHECK(e >= 0, "shallow_light_tree: node left unattached");
    result.edges.push_back(e);
  }
  // Parent edges may repeat if a node's edge also parents another; they
  // cannot (each node owns one), but duplicates across u/v orientations
  // are possible only for the same edge id - dedupe defensively.
  std::sort(result.edges.begin(), result.edges.end());
  result.edges.erase(
      std::unique(result.edges.begin(), result.edges.end()),
      result.edges.end());
  result.weight = g.total_weight(result.edges);
  return result;
}

double routing_cost(const WeightedGraph& g,
                    const std::vector<EdgeId>& tree) {
  WeightedGraph t(g.node_count());
  for (EdgeId e : tree) {
    t.add_edge(g.edge(e).u, g.edge(e).v, g.weight(e));
  }
  double total = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto d = dijkstra(t, u).distance;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v != u) total += d[static_cast<std::size_t>(v)];
    }
  }
  return total;
}

SpanningTreeResult mrct_best_spt(const WeightedGraph& g) {
  QDC_EXPECT(g.node_count() >= 1, "mrct_best_spt: empty graph");
  QDC_CHECK(is_connected(g.topology()),
            "mrct_best_spt: graph must be connected");
  SpanningTreeResult best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (NodeId root = 0; root < g.node_count(); ++root) {
    const auto spt = dijkstra(g, root);
    std::vector<EdgeId> edges;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v != root) {
        edges.push_back(spt.parent_edge[static_cast<std::size_t>(v)]);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    const double cost = routing_cost(g, edges);
    if (cost < best_cost) {
      best_cost = cost;
      best.edges = edges;
      best.weight = g.total_weight(edges);
    }
  }
  return best;
}

}  // namespace qdc::graph
