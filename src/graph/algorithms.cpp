#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "graph/dsu.hpp"
#include "util/expect.hpp"

namespace qdc::graph {

std::vector<int> bfs_distances(const Graph& g, NodeId source) {
  QDC_EXPECT(g.valid_node(source), "bfs_distances: bad source");
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Adjacency& a : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(a.neighbor)];
      if (d == -1) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push(a.neighbor);
      }
    }
  }
  return dist;
}

std::vector<int> connected_components(const Graph& g) {
  std::vector<int> label(static_cast<std::size_t>(g.node_count()), -1);
  int next = 0;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (label[static_cast<std::size_t>(start)] != -1) continue;
    label[static_cast<std::size_t>(start)] = next;
    std::queue<NodeId> queue;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const Adjacency& a : g.neighbors(u)) {
        auto& l = label[static_cast<std::size_t>(a.neighbor)];
        if (l == -1) {
          l = next;
          queue.push(a.neighbor);
        }
      }
    }
    ++next;
  }
  return label;
}

int component_count(const Graph& g) {
  const auto labels = connected_components(g);
  return labels.empty() ? 0 : 1 + *std::max_element(labels.begin(),
                                                    labels.end());
}

bool is_connected(const Graph& g) {
  return g.node_count() <= 1 || component_count(g) == 1;
}

bool st_connected(const Graph& g, NodeId u, NodeId v) {
  QDC_EXPECT(g.valid_node(u), "st_connected: bad node u");
  QDC_EXPECT(g.valid_node(v), "st_connected: bad node v");
  const auto labels = connected_components(g);
  return labels[static_cast<std::size_t>(u)] ==
         labels[static_cast<std::size_t>(v)];
}

int diameter(const Graph& g) {
  QDC_EXPECT(g.node_count() > 0, "diameter: empty graph");
  QDC_CHECK(is_connected(g), "diameter: graph must be connected");
  int best = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto dist = bfs_distances(g, u);
    best = std::max(best, *std::max_element(dist.begin(), dist.end()));
  }
  return best;
}

bool is_bipartite(const Graph& g) {
  std::vector<int> color(static_cast<std::size_t>(g.node_count()), -1);
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (color[static_cast<std::size_t>(start)] != -1) continue;
    color[static_cast<std::size_t>(start)] = 0;
    std::queue<NodeId> queue;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const Adjacency& a : g.neighbors(u)) {
        auto& c = color[static_cast<std::size_t>(a.neighbor)];
        if (c == -1) {
          c = 1 - color[static_cast<std::size_t>(u)];
          queue.push(a.neighbor);
        } else if (c == color[static_cast<std::size_t>(u)]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool has_cycle(const Graph& g) {
  DisjointSetUnion dsu(g.node_count());
  for (const Edge& e : g.edges()) {
    if (!dsu.unite(e.u, e.v)) {
      return true;
    }
  }
  return false;
}

bool edge_on_cycle(const Graph& g, EdgeId e) {
  QDC_EXPECT(e >= 0 && e < g.edge_count(), "edge_on_cycle: bad edge id");
  DisjointSetUnion dsu(g.node_count());
  for (EdgeId other = 0; other < g.edge_count(); ++other) {
    if (other == e) continue;
    dsu.unite(g.edge(other).u, g.edge(other).v);
  }
  return dsu.same(g.edge(e).u, g.edge(e).v);
}

int cycle_count_degree_two(const Graph& g) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    QDC_CHECK(g.degree(u) <= 2,
              "cycle_count_degree_two: node of degree > 2");
  }
  // In a graph of max degree 2, each component is a path or a cycle; a
  // component is a cycle iff #edges == #nodes within it.
  const auto labels = connected_components(g);
  const int k = component_count(g);
  std::vector<int> nodes(static_cast<std::size_t>(k), 0);
  std::vector<int> edges(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    ++nodes[static_cast<std::size_t>(labels[static_cast<std::size_t>(u)])];
  }
  for (const Edge& e : g.edges()) {
    ++edges[static_cast<std::size_t>(labels[static_cast<std::size_t>(e.u)])];
  }
  int cycles = 0;
  for (int c = 0; c < k; ++c) {
    if (edges[static_cast<std::size_t>(c)] ==
        nodes[static_cast<std::size_t>(c)]) {
      ++cycles;
    }
  }
  return cycles;
}

bool is_hamiltonian_cycle(const Graph& g) {
  if (g.node_count() < 3) return false;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (g.degree(u) != 2) return false;
  }
  return is_connected(g);
}

bool is_spanning_tree(const Graph& g) {
  return g.edge_count() == g.node_count() - 1 && is_connected(g);
}

bool is_simple_path(const Graph& g) {
  int degree_one = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const int d = g.degree(u);
    if (d > 2) return false;
    if (d == 1) ++degree_one;
  }
  if (degree_one != 2) return false;
  if (has_cycle(g)) return false;
  // All non-isolated nodes must form a single component.
  DisjointSetUnion dsu(g.node_count());
  for (const Edge& e : g.edges()) {
    dsu.unite(e.u, e.v);
  }
  int touched_components = 0;
  std::vector<bool> seen(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (g.degree(u) == 0) continue;
    const int root = dsu.find(u);
    if (!seen[static_cast<std::size_t>(root)]) {
      seen[static_cast<std::size_t>(root)] = true;
      ++touched_components;
    }
  }
  return touched_components == 1;
}

int connectivity_distance(const Graph& g) {
  return component_count(g) - 1;
}

bool is_spanning_connected_subgraph(const Graph& n, const EdgeSubset& m) {
  const Graph sub = subgraph(n, m);
  if (!is_connected(sub)) return false;
  for (NodeId u = 0; u < sub.node_count(); ++u) {
    if (sub.degree(u) == 0 && sub.node_count() > 1) return false;
  }
  return true;
}

bool subset_is_hamiltonian_cycle(const Graph& n, const EdgeSubset& m) {
  return is_hamiltonian_cycle(subgraph(n, m));
}

bool subset_is_spanning_tree(const Graph& n, const EdgeSubset& m) {
  return is_spanning_tree(subgraph(n, m));
}

bool subset_is_cut(const Graph& n, const EdgeSubset& m) {
  EdgeSubset complement = EdgeSubset::all(n.edge_count());
  for (EdgeId e : m.to_vector()) {
    complement.erase(e);
  }
  return !is_connected(subgraph(n, complement));
}

bool subset_is_st_cut(const Graph& n, const EdgeSubset& m, NodeId s,
                      NodeId t) {
  EdgeSubset complement = EdgeSubset::all(n.edge_count());
  for (EdgeId e : m.to_vector()) {
    complement.erase(e);
  }
  return !st_connected(subgraph(n, complement), s, t);
}

}  // namespace qdc::graph
