#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/expect.hpp"

namespace qdc::graph {

Graph path_graph(int n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
  }
  return g;
}

Graph cycle_graph(int n) {
  QDC_EXPECT(n >= 3, "cycle_graph: need >= 3 nodes");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      g.add_edge(u, v);
    }
  }
  return g;
}

Graph star_graph(int n) {
  QDC_EXPECT(n >= 1, "star_graph: need >= 1 node");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(0, v);
  }
  return g;
}

Graph grid_graph(int rows, int cols) {
  QDC_EXPECT(rows >= 1 && cols >= 1, "grid_graph: bad dimensions");
  Graph g(rows * cols);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph random_tree(int n, Rng& rng) {
  QDC_EXPECT(n >= 1, "random_tree: need >= 1 node");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prufer decoding (sequence entries are drawn from 0..n-1; the decode
  // pairs each entry with the current minimum-index leaf).
  std::vector<int> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) {
    x = static_cast<int>(uniform_int(rng, 0, n - 1));
  }
  std::vector<int> degree(static_cast<std::size_t>(n), 1);
  for (int x : prufer) ++degree[static_cast<std::size_t>(x)];
  int ptr = 0;
  while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  int leaf = ptr;
  for (int x : prufer) {
    g.add_edge(leaf, x);
    if (--degree[static_cast<std::size_t>(x)] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(leaf, n - 1);
  return g;
}

Graph random_gnp(int n, double p, Rng& rng) {
  QDC_EXPECT(p >= 0.0 && p <= 1.0, "random_gnp: p out of range");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng, p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_connected(int n, double p, Rng& rng) {
  Graph tree = random_tree(n, rng);
  Graph g(n);
  // Copy tree edges first, then sprinkle extras avoiding duplicates.
  for (const Edge& e : tree.edges()) {
    g.add_edge(e.u, e.v);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && coin(rng, p)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

WeightedGraph randomly_weighted(const Graph& g, double min_w, double max_w,
                                Rng& rng) {
  QDC_EXPECT(0.0 < min_w && min_w <= max_w, "randomly_weighted: bad range");
  WeightedGraph w(g.node_count());
  std::uniform_real_distribution<double> dist(min_w, max_w);
  for (const Edge& e : g.edges()) {
    w.add_edge(e.u, e.v, dist(rng));
  }
  return w;
}

WeightedGraph random_weighted_aspect(int n, double p, double aspect,
                                     Rng& rng) {
  QDC_EXPECT(aspect >= 1.0, "random_weighted_aspect: aspect < 1");
  const Graph topo = random_connected(n, p, rng);
  WeightedGraph w = randomly_weighted(topo, 1.0, aspect, rng);
  if (w.edge_count() >= 2) {
    w.set_weight(0, 1.0);
    w.set_weight(1, aspect);
  } else if (w.edge_count() == 1) {
    w.set_weight(0, 1.0);
  }
  return w;
}

EdgeSubset random_edge_subset(const Graph& g, double p, Rng& rng) {
  EdgeSubset s(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (coin(rng, p)) s.insert(e);
  }
  return s;
}

Graph random_hamiltonian_cycle(int n, Rng& rng) {
  QDC_EXPECT(n >= 3, "random_hamiltonian_cycle: need >= 3 nodes");
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_edge(order[static_cast<std::size_t>(i)],
               order[static_cast<std::size_t>((i + 1) % n)]);
  }
  return g;
}

std::vector<Edge> random_perfect_matching(int n, Rng& rng) {
  QDC_EXPECT(n % 2 == 0, "random_perfect_matching: n must be even");
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<Edge> matching;
  for (int i = 0; i < n; i += 2) {
    matching.push_back(Edge{order[static_cast<std::size_t>(i)],
                            order[static_cast<std::size_t>(i + 1)]});
  }
  return matching;
}

}  // namespace qdc::graph
