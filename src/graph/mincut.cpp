#include "graph/mincut.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/algorithms.hpp"
#include "util/expect.hpp"

namespace qdc::graph {

MinCutResult min_cut_stoer_wagner(const WeightedGraph& g) {
  const int n = g.node_count();
  QDC_EXPECT(n >= 2, "min_cut_stoer_wagner: need >= 2 nodes");
  QDC_CHECK(is_connected(g.topology()),
            "min_cut_stoer_wagner: graph must be connected");

  // Dense weight matrix; parallel edges merge additively.
  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    w[static_cast<std::size_t>(edge.u)][static_cast<std::size_t>(edge.v)] +=
        g.weight(e);
    w[static_cast<std::size_t>(edge.v)][static_cast<std::size_t>(edge.u)] +=
        g.weight(e);
  }

  // merged[v] = original nodes currently contracted into v.
  std::vector<std::vector<NodeId>> merged(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) merged[static_cast<std::size_t>(v)] = {v};
  std::vector<bool> gone(static_cast<std::size_t>(n), false);

  MinCutResult best;
  best.weight = std::numeric_limits<double>::infinity();

  for (int phase = 0; phase + 1 < n; ++phase) {
    // Maximum-adjacency ordering.
    std::vector<double> attach(static_cast<std::size_t>(n), 0.0);
    std::vector<bool> added(static_cast<std::size_t>(n), false);
    NodeId prev = -1, last = -1;
    const int active = n - phase;
    for (int step = 0; step < active; ++step) {
      NodeId pick = -1;
      for (NodeId v = 0; v < n; ++v) {
        if (gone[static_cast<std::size_t>(v)] ||
            added[static_cast<std::size_t>(v)]) {
          continue;
        }
        if (pick == -1 || attach[static_cast<std::size_t>(v)] >
                              attach[static_cast<std::size_t>(pick)]) {
          pick = v;
        }
      }
      added[static_cast<std::size_t>(pick)] = true;
      prev = last;
      last = pick;
      for (NodeId v = 0; v < n; ++v) {
        if (!gone[static_cast<std::size_t>(v)] &&
            !added[static_cast<std::size_t>(v)]) {
          attach[static_cast<std::size_t>(v)] +=
              w[static_cast<std::size_t>(pick)][static_cast<std::size_t>(v)];
        }
      }
    }
    // Cut-of-the-phase: `last` alone vs the rest.
    if (attach[static_cast<std::size_t>(last)] < best.weight) {
      best.weight = attach[static_cast<std::size_t>(last)];
      best.partition = merged[static_cast<std::size_t>(last)];
    }
    // Contract last into prev.
    if (prev != -1) {
      for (NodeId v = 0; v < n; ++v) {
        w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)] +=
            w[static_cast<std::size_t>(last)][static_cast<std::size_t>(v)];
        w[static_cast<std::size_t>(v)][static_cast<std::size_t>(prev)] =
            w[static_cast<std::size_t>(prev)][static_cast<std::size_t>(v)];
      }
      auto& into = merged[static_cast<std::size_t>(prev)];
      auto& from = merged[static_cast<std::size_t>(last)];
      into.insert(into.end(), from.begin(), from.end());
      gone[static_cast<std::size_t>(last)] = true;
    }
  }
  std::sort(best.partition.begin(), best.partition.end());
  return best;
}

int edge_connectivity(const Graph& g) {
  if (!is_connected(g)) return 0;
  const WeightedGraph w = WeightedGraph::with_unit_weights(g);
  return static_cast<int>(min_cut_stoer_wagner(w).weight + 0.5);
}

namespace {

/// Edmonds-Karp max flow on an adjacency-matrix capacity graph.
double max_flow(std::vector<std::vector<double>> cap, NodeId s, NodeId t) {
  const int n = static_cast<int>(cap.size());
  double flow = 0.0;
  while (true) {
    std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
    parent[static_cast<std::size_t>(s)] = s;
    std::queue<NodeId> queue;
    queue.push(s);
    while (!queue.empty() && parent[static_cast<std::size_t>(t)] == -1) {
      const NodeId u = queue.front();
      queue.pop();
      for (NodeId v = 0; v < n; ++v) {
        if (parent[static_cast<std::size_t>(v)] == -1 &&
            cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] >
                1e-12) {
          parent[static_cast<std::size_t>(v)] = u;
          queue.push(v);
        }
      }
    }
    if (parent[static_cast<std::size_t>(t)] == -1) break;
    double push = std::numeric_limits<double>::infinity();
    for (NodeId v = t; v != s;
         v = parent[static_cast<std::size_t>(v)]) {
      const NodeId u = parent[static_cast<std::size_t>(v)];
      push = std::min(
          push, cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]);
    }
    for (NodeId v = t; v != s;
         v = parent[static_cast<std::size_t>(v)]) {
      const NodeId u = parent[static_cast<std::size_t>(v)];
      cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] -= push;
      cap[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] += push;
    }
    flow += push;
  }
  return flow;
}

}  // namespace

double min_st_cut_weight(const WeightedGraph& g, NodeId s, NodeId t) {
  QDC_EXPECT(g.topology().valid_node(s) && g.topology().valid_node(t),
             "min_st_cut_weight: bad endpoint");
  QDC_EXPECT(s != t, "min_st_cut_weight: s == t");
  const int n = g.node_count();
  std::vector<std::vector<double>> cap(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    cap[static_cast<std::size_t>(edge.u)][static_cast<std::size_t>(edge.v)] +=
        g.weight(e);
    cap[static_cast<std::size_t>(edge.v)][static_cast<std::size_t>(edge.u)] +=
        g.weight(e);
  }
  return max_flow(std::move(cap), s, t);
}

}  // namespace qdc::graph
