#include "graph/dsu.hpp"

#include <numeric>
#include <utility>

#include "util/expect.hpp"

namespace qdc::graph {

DisjointSetUnion::DisjointSetUnion(int n)
    : parent_(static_cast<std::size_t>(n)),
      size_(static_cast<std::size_t>(n), 1),
      set_count_(n) {
  QDC_EXPECT(n >= 0, "DisjointSetUnion: negative size");
  std::iota(parent_.begin(), parent_.end(), 0);
}

int DisjointSetUnion::find(int x) {
  QDC_EXPECT(x >= 0 && x < element_count(), "DisjointSetUnion::find: bad id");
  int root = x;
  while (parent_[static_cast<std::size_t>(root)] != root) {
    root = parent_[static_cast<std::size_t>(root)];
  }
  while (parent_[static_cast<std::size_t>(x)] != root) {
    x = std::exchange(parent_[static_cast<std::size_t>(x)], root);
  }
  return root;
}

bool DisjointSetUnion::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
    std::swap(a, b);
  }
  parent_[static_cast<std::size_t>(b)] = a;
  size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  --set_count_;
  return true;
}

int DisjointSetUnion::set_size(int x) {
  return size_[static_cast<std::size_t>(find(x))];
}

}  // namespace qdc::graph
