// Sequential shortest-path algorithms: ground truth for the distributed
// s-source distance / shortest-path-tree / shortest s-t path problems
// (Appendix A.3).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace qdc::graph {

inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  std::vector<double> distance;    ///< weighted distance from the source
  std::vector<EdgeId> parent_edge; ///< tree edge towards the source; -1 at
                                   ///< the source / unreachable nodes
};

/// Dijkstra from `source`. Requires positive weights (enforced by
/// WeightedGraph).
ShortestPathTree dijkstra(const WeightedGraph& g, NodeId source);

/// Bellman-Ford from `source` (the algorithm the distributed version
/// mirrors round for round).
ShortestPathTree bellman_ford(const WeightedGraph& g, NodeId source);

/// Weighted distance between s and t; +infinity if disconnected.
double st_distance(const WeightedGraph& g, NodeId s, NodeId t);

/// True if `tree` (an edge subset of g) is a valid shortest-path tree
/// rooted at `source`: it must be a spanning tree in which the unique
/// root-to-node path has weight equal to the true distance.
bool is_shortest_path_tree(const WeightedGraph& g, const EdgeSubset& tree,
                           NodeId source);

/// Least-element lists (Cohen; Appendix A.2). Given distinct integer ranks,
/// the LE-list of u is { (v, d(u,v)) : v has the minimum rank among nodes
/// within distance d(u,v) of u }.
struct LeListEntry {
  NodeId node = -1;
  double distance = 0.0;
  bool operator==(const LeListEntry&) const = default;
};

std::vector<LeListEntry> least_element_list(const WeightedGraph& g, NodeId u,
                                            const std::vector<int>& rank);

}  // namespace qdc::graph
