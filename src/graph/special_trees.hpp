// Special spanning trees from the paper's optimization catalogue
// (Appendix A.3 / Corollary 3.9):
//
//  * shallow-light trees: the Khuller-Raghavachari-Young LAST balances the
//    shortest-path tree (radius) against the MST (weight): for alpha > 1
//    every node's tree distance from the root is at most alpha times its
//    true distance while the total weight is at most (1 + 2/(alpha-1))
//    times the MST's;
//  * minimum routing-cost spanning trees: routing cost of T is
//    sum over ordered pairs of d_T(u, v); the best shortest-path tree over
//    all roots is the classical 2-approximation.
#pragma once

#include "graph/graph.hpp"

namespace qdc::graph {

struct SpanningTreeResult {
  std::vector<EdgeId> edges;
  double weight = 0.0;
};

/// Khuller-Raghavachari-Young (alpha, 1 + 2/(alpha-1))-LAST rooted at
/// `root`. Requires alpha > 1 and a connected graph.
SpanningTreeResult shallow_light_tree(const WeightedGraph& g, NodeId root,
                                      double alpha);

/// Routing cost of a spanning tree given as an edge subset: the sum of
/// tree distances over all ordered node pairs.
double routing_cost(const WeightedGraph& g, const std::vector<EdgeId>& tree);

/// 2-approximate minimum routing-cost spanning tree: the best
/// shortest-path tree over all roots.
SpanningTreeResult mrct_best_spt(const WeightedGraph& g);

}  // namespace qdc::graph
