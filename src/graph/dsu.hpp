// Disjoint-set union (union-find) with path compression and union by size.
#pragma once

#include <vector>

namespace qdc::graph {

class DisjointSetUnion {
 public:
  explicit DisjointSetUnion(int n);

  /// Representative of x's set.
  int find(int x);

  /// Merges the sets of a and b; returns false if already merged.
  bool unite(int a, int b);

  bool same(int a, int b) { return find(a) == find(b); }

  /// Number of elements in x's set.
  int set_size(int x);

  /// Number of disjoint sets remaining.
  int set_count() const { return set_count_; }

  int element_count() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int set_count_ = 0;
};

}  // namespace qdc::graph
