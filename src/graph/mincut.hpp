// Sequential minimum cut (Stoer-Wagner): ground truth for the distributed
// min-cut approximation (Corollary 3.9 context).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qdc::graph {

struct MinCutResult {
  double weight = 0.0;
  /// Nodes on one side of the cut.
  std::vector<NodeId> partition;
};

/// Stoer-Wagner global minimum cut. Requires a connected graph on >= 2
/// nodes.
MinCutResult min_cut_stoer_wagner(const WeightedGraph& g);

/// Unweighted edge connectivity (min number of edges whose removal
/// disconnects g).
int edge_connectivity(const Graph& g);

/// Minimum s-t cut weight via max-flow (successive BFS augmentation on a
/// capacity graph built from the weighted graph).
double min_st_cut_weight(const WeightedGraph& g, NodeId s, NodeId t);

}  // namespace qdc::graph
