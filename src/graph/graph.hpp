// Undirected multigraph with stable edge identifiers.
//
// This is the sequential substrate of the repository: the CONGEST simulator
// models its network topology as a Graph, the gadget reductions build Graphs,
// and every distributed algorithm is validated against sequential algorithms
// operating on Graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "util/expect.hpp"

namespace qdc::graph {

using NodeId = int;
using EdgeId = int;

/// An undirected edge between nodes u and v (u and v may appear in either
/// order; self-loops are disallowed).
struct Edge {
  NodeId u = -1;
  NodeId v = -1;

  /// The endpoint that is not `x`. Requires x in {u, v}.
  NodeId other(NodeId x) const {
    QDC_EXPECT(x == u || x == v, "Edge::other: x is not an endpoint");
    return x == u ? v : u;
  }

  bool operator==(const Edge&) const = default;
};

/// Entry of an adjacency list: the neighbour reached and the edge used.
struct Adjacency {
  NodeId neighbor = -1;
  EdgeId edge = -1;
};

/// Undirected multigraph. Nodes are 0..node_count()-1; edges get dense ids
/// 0..edge_count()-1 in insertion order.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count);

  int node_count() const { return static_cast<int>(adjacency_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge and returns its id. Self-loops are rejected.
  EdgeId add_edge(NodeId u, NodeId v);

  const Edge& edge(EdgeId e) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbours of u, one entry per incident edge (parallel edges appear
  /// multiple times).
  const std::vector<Adjacency>& neighbors(NodeId u) const;

  int degree(NodeId u) const {
    return static_cast<int>(neighbors(u).size());
  }

  /// True if some edge connects u and v.
  bool has_edge(NodeId u, NodeId v) const;

  bool valid_node(NodeId u) const { return u >= 0 && u < node_count(); }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

/// An undirected graph with positive edge weights, used by the optimization
/// problems (MST, shortest paths, min cut). Weights are indexed by EdgeId.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(int node_count) : graph_(node_count) {}

  /// Builds from an existing topology with unit weights.
  static WeightedGraph with_unit_weights(const Graph& g);

  int node_count() const { return graph_.node_count(); }
  int edge_count() const { return graph_.edge_count(); }

  EdgeId add_edge(NodeId u, NodeId v, double weight);

  const Graph& topology() const { return graph_; }
  const Edge& edge(EdgeId e) const { return graph_.edge(e); }
  const std::vector<Adjacency>& neighbors(NodeId u) const {
    return graph_.neighbors(u);
  }

  double weight(EdgeId e) const;
  void set_weight(EdgeId e, double w);
  const std::vector<double>& weights() const { return weights_; }

  /// Total weight of an edge subset.
  double total_weight(const std::vector<EdgeId>& edge_set) const;

  /// max weight / min weight over all edges (the paper's aspect ratio W).
  /// Requires at least one edge.
  double aspect_ratio() const;

 private:
  Graph graph_;
  std::vector<double> weights_;
};

/// A subset of a graph's edges, as an indicator over EdgeIds. This is the
/// "subnetwork M" of the verification problems (Section 2.2).
class EdgeSubset {
 public:
  EdgeSubset() = default;
  explicit EdgeSubset(int edge_count)
      : member_(static_cast<std::size_t>(edge_count), 0) {}

  static EdgeSubset all(int edge_count);
  static EdgeSubset of(int edge_count, const std::vector<EdgeId>& edges);

  int universe_size() const { return static_cast<int>(member_.size()); }

  bool contains(EdgeId e) const;
  void insert(EdgeId e);
  void erase(EdgeId e);

  /// Number of member edges.
  int size() const;

  /// Member edges in increasing EdgeId order.
  std::vector<EdgeId> to_vector() const;

  bool operator==(const EdgeSubset&) const = default;

 private:
  std::vector<std::uint8_t> member_;
};

/// The subgraph of `g` induced by keeping exactly the edges in `m`
/// (all nodes are kept). Edge ids are renumbered densely; the mapping from
/// new to old ids is returned through `old_edge_ids` when non-null.
Graph subgraph(const Graph& g, const EdgeSubset& m,
               std::vector<EdgeId>* old_edge_ids = nullptr);

}  // namespace qdc::graph
