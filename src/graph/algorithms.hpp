// Sequential graph algorithms: traversal, connectivity, structure predicates.
// These provide ground truth for the distributed verification algorithms
// (Section 2.2 / Appendix A.2 of the paper).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace qdc::graph {

/// BFS distances (in hops) from `source`; unreachable nodes get -1.
std::vector<int> bfs_distances(const Graph& g, NodeId source);

/// Connected-component labels in [0, #components); label of node i at [i].
std::vector<int> connected_components(const Graph& g);

int component_count(const Graph& g);

bool is_connected(const Graph& g);

/// True if u and v are in the same component.
bool st_connected(const Graph& g, NodeId u, NodeId v);

/// Exact hop diameter via all-pairs BFS. Requires a connected graph.
int diameter(const Graph& g);

/// True if the graph is bipartite (every component 2-colorable).
bool is_bipartite(const Graph& g);

/// True if the graph contains at least one cycle (parallel edges count).
bool has_cycle(const Graph& g);

/// True if edge e lies on some cycle, i.e. its endpoints remain connected
/// after removing e.
bool edge_on_cycle(const Graph& g, EdgeId e);

/// Number of simple cycles in a graph whose maximum degree is at most 2
/// (such graphs are disjoint unions of paths and cycles). Throws ModelError
/// if some node has degree > 2. This is the cycle-count of the paper's
/// gadget graphs (Observation 8.1, Figure 12).
int cycle_count_degree_two(const Graph& g);

/// True if the graph (on >= 3 nodes) is a single Hamiltonian cycle:
/// connected, and every node has degree exactly 2.
bool is_hamiltonian_cycle(const Graph& g);

/// True if the graph is a spanning tree: connected with n-1 edges.
bool is_spanning_tree(const Graph& g);

/// True if the graph is a simple path covering all its non-isolated
/// structure: no cycle, connected over the nodes it touches, max degree 2,
/// exactly two degree-1 endpoints (Appendix A.2 "simple path verification":
/// all nodes have degree 0 or 2 except two of degree 1, and no cycle).
bool is_simple_path(const Graph& g);

/// delta-far measure for connectivity (Section 2.2): the minimum number of
/// edges that must be added to make the graph connected, i.e.
/// #components - 1.
int connectivity_distance(const Graph& g);

/// Predicates on a subnetwork M of N given as an EdgeSubset of N's edges.
bool is_spanning_connected_subgraph(const Graph& n, const EdgeSubset& m);
bool subset_is_hamiltonian_cycle(const Graph& n, const EdgeSubset& m);
bool subset_is_spanning_tree(const Graph& n, const EdgeSubset& m);

/// True if removing M's edges disconnects N ("cut verification").
bool subset_is_cut(const Graph& n, const EdgeSubset& m);

/// True if removing M's edges separates s from t ("s-t cut verification").
bool subset_is_st_cut(const Graph& n, const EdgeSubset& m, NodeId s, NodeId t);

}  // namespace qdc::graph
