#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

namespace qdc::graph {

Graph::Graph(int node_count) {
  QDC_EXPECT(node_count >= 0, "Graph: negative node count");
  adjacency_.resize(static_cast<std::size_t>(node_count));
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  QDC_EXPECT(valid_node(u) && valid_node(v), "Graph::add_edge: bad endpoint");
  QDC_EXPECT(u != v, "Graph::add_edge: self-loops are not allowed");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v});
  adjacency_[static_cast<std::size_t>(u)].push_back(Adjacency{v, id});
  adjacency_[static_cast<std::size_t>(v)].push_back(Adjacency{u, id});
  return id;
}

const Edge& Graph::edge(EdgeId e) const {
  QDC_EXPECT(e >= 0 && e < edge_count(), "Graph::edge: bad edge id");
  return edges_[static_cast<std::size_t>(e)];
}

const std::vector<Adjacency>& Graph::neighbors(NodeId u) const {
  QDC_EXPECT(valid_node(u), "Graph::neighbors: bad node id");
  return adjacency_[static_cast<std::size_t>(u)];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  QDC_EXPECT(valid_node(u) && valid_node(v), "Graph::has_edge: bad endpoint");
  const auto& adj = neighbors(u);
  return std::any_of(adj.begin(), adj.end(),
                     [v](const Adjacency& a) { return a.neighbor == v; });
}

WeightedGraph WeightedGraph::with_unit_weights(const Graph& g) {
  WeightedGraph w(g.node_count());
  for (const Edge& e : g.edges()) {
    w.add_edge(e.u, e.v, 1.0);
  }
  return w;
}

EdgeId WeightedGraph::add_edge(NodeId u, NodeId v, double weight) {
  QDC_EXPECT(weight > 0.0, "WeightedGraph::add_edge: weight must be positive");
  const EdgeId id = graph_.add_edge(u, v);
  weights_.push_back(weight);
  return id;
}

double WeightedGraph::weight(EdgeId e) const {
  QDC_EXPECT(e >= 0 && e < edge_count(), "WeightedGraph::weight: bad edge id");
  return weights_[static_cast<std::size_t>(e)];
}

void WeightedGraph::set_weight(EdgeId e, double w) {
  QDC_EXPECT(e >= 0 && e < edge_count(),
             "WeightedGraph::set_weight: bad edge id");
  QDC_EXPECT(w > 0.0, "WeightedGraph::set_weight: weight must be positive");
  weights_[static_cast<std::size_t>(e)] = w;
}

double WeightedGraph::total_weight(const std::vector<EdgeId>& edge_set) const {
  double total = 0.0;
  for (EdgeId e : edge_set) {
    total += weight(e);
  }
  return total;
}

double WeightedGraph::aspect_ratio() const {
  QDC_EXPECT(edge_count() > 0, "WeightedGraph::aspect_ratio: no edges");
  const auto [lo, hi] = std::minmax_element(weights_.begin(), weights_.end());
  return *hi / *lo;
}

EdgeSubset EdgeSubset::all(int edge_count) {
  EdgeSubset s(edge_count);
  std::fill(s.member_.begin(), s.member_.end(), std::uint8_t{1});
  return s;
}

EdgeSubset EdgeSubset::of(int edge_count, const std::vector<EdgeId>& edges) {
  EdgeSubset s(edge_count);
  for (EdgeId e : edges) {
    s.insert(e);
  }
  return s;
}

bool EdgeSubset::contains(EdgeId e) const {
  QDC_EXPECT(e >= 0 && e < universe_size(), "EdgeSubset::contains: bad id");
  return member_[static_cast<std::size_t>(e)] != 0;
}

void EdgeSubset::insert(EdgeId e) {
  QDC_EXPECT(e >= 0 && e < universe_size(), "EdgeSubset::insert: bad id");
  member_[static_cast<std::size_t>(e)] = 1;
}

void EdgeSubset::erase(EdgeId e) {
  QDC_EXPECT(e >= 0 && e < universe_size(), "EdgeSubset::erase: bad id");
  member_[static_cast<std::size_t>(e)] = 0;
}

int EdgeSubset::size() const {
  return static_cast<int>(
      std::count(member_.begin(), member_.end(), std::uint8_t{1}));
}

std::vector<EdgeId> EdgeSubset::to_vector() const {
  std::vector<EdgeId> out;
  for (int e = 0; e < universe_size(); ++e) {
    if (member_[static_cast<std::size_t>(e)]) {
      out.push_back(e);
    }
  }
  return out;
}

Graph subgraph(const Graph& g, const EdgeSubset& m,
               std::vector<EdgeId>* old_edge_ids) {
  QDC_EXPECT(m.universe_size() == g.edge_count(),
             "subgraph: subset universe does not match graph");
  Graph out(g.node_count());
  if (old_edge_ids != nullptr) {
    old_edge_ids->clear();
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!m.contains(e)) continue;
    out.add_edge(g.edge(e).u, g.edge(e).v);
    if (old_edge_ids != nullptr) {
      old_edge_ids->push_back(e);
    }
  }
  return out;
}

}  // namespace qdc::graph
